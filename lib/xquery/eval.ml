module Dom = Xmark_xml.Dom
module Symbol = Xmark_xml.Symbol
module Stats = Xmark_stats
module Vec = Xmark_relational.Vec_ops

module Make (S : Store_sig.S) = struct
  type attr = { aowner_order : int; aname : string; avalue : string }

  type item =
    | D  (* the (virtual) document node above the document element *)
    | N of S.node
    | C of Dom.node
    | A of attr
    | Num of float
    | Str of string
    | Bool of bool

  type value = item list

  exception Runtime_error of string

  let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

  (* --- compiled queries ------------------------------------------------ *)

  type join_side = { source : Ast.expr; key : Ast.expr }

  type join_table = Unusable | Built of item array * (string, int list) Hashtbl.t

  type compiled = {
    store : S.t;
    query : Ast.query;
    funcs : (string, string list * Ast.expr) Hashtbl.t;
    tag_arrays : (Symbol.t, S.node array option) Hashtbl.t;
        (* doc-order extent per tag, when the backend offers one *)
    optimize : bool;
        (* heuristic rewrites: equi-joins in FLWOR bodies become hash joins
           (the hand-optimized plans the paper applied to Systems D-F) *)
    join_tables : (join_side, join_table) Hashtbl.t;
    ineq_tables : (join_side, (float array * float array) option) Hashtbl.t;
        (* per-item (min,max) key values, each sorted ascending; None when
           the keys are not usable numerically *)
    vec : (Vec.adapter * (int -> S.node)) option;
        (* id-algebra view of the store, when the backend offers one *)
    vec_plans : (Ast.step list, Vec.plan * Ast.step list) Hashtbl.t;
        (* per absolute path: physical plan for its longest vectorizable
           prefix plus the scalar suffix steps, compiled once per query;
           missing key = scalar fallback *)
  }

  type ctx = {
    c : compiled;
    vars : (string * value) list;
    citem : item option;  (* context item inside predicates *)
    cpos : int;
    csize : int;
  }

  (* Touch the store's metadata for every name in the query: the catalog
     lookups that dominate compilation for fragmenting mappings (Table 2). *)
  let static_check c =
    let rec walk_expr (e : Ast.expr) =
      match e with
      | Ast.Number _ | Ast.Literal _ | Ast.Var _ | Ast.Root | Ast.Context -> ()
      | Ast.Sequence es -> List.iter walk_expr es
      | Ast.Path (o, steps) ->
          walk_expr o;
          List.iter
            (fun { Ast.test; preds; _ } ->
              (match test with
              | Ast.Name n -> ignore (S.tag_count c.store n)
              | Ast.Star | Ast.Text_test | Ast.Any_kind -> ());
              List.iter walk_expr preds)
            steps
      | Ast.Filter (e, preds) ->
          walk_expr e;
          List.iter walk_expr preds
      | Ast.Flwor f ->
          List.iter
            (function Ast.For (_, e) | Ast.Let (_, e) -> walk_expr e)
            f.clauses;
          Option.iter walk_expr f.where;
          List.iter (fun { Ast.key; _ } -> walk_expr key) f.order;
          walk_expr f.ret
      | Ast.Quantified (_, binds, sat) ->
          List.iter (fun (_, e) -> walk_expr e) binds;
          walk_expr sat
      | Ast.If (a, b, c') ->
          walk_expr a;
          walk_expr b;
          walk_expr c'
      | Ast.Or (a, b)
      | Ast.And (a, b)
      | Ast.Compare (_, a, b)
      | Ast.Arith (_, a, b)
      | Ast.Node_before (a, b)
      | Ast.Node_after (a, b) ->
          walk_expr a;
          walk_expr b
      | Ast.Neg a -> walk_expr a
      | Ast.Call (_, args) -> List.iter walk_expr args
      | Ast.Elem_ctor (_, attrs, content) ->
          List.iter
            (fun (_, pieces) ->
              List.iter (function Ast.A_expr e -> walk_expr e | Ast.A_text _ -> ()) pieces)
            attrs;
          List.iter (function Ast.C_expr e -> walk_expr e | Ast.C_text _ -> ()) content
    in
    List.iter (fun { Ast.body; _ } -> walk_expr body) c.query.Ast.functions;
    walk_expr c.query.Ast.main

  (* Rewrite (optimize only):  let $v := FLWOR ... count($v)  where every
     use of $v is count($v) becomes a direct count(FLWOR), enabling the
     count-fusion join below (Q11/Q12's shape). *)
  let rec occurrences v (e : Ast.expr) =
    (* (all uses, uses as count($v)) *)
    let sum f xs = List.fold_left (fun (a, b) x -> let a', b' = f x in (a + a', b + b')) (0, 0) xs in
    match e with
    | Ast.Var x -> ((if String.equal x v then 1 else 0), 0)
    | Ast.Call (("count" | "fn:count"), [ Ast.Var x ]) when String.equal x v -> (1, 1)
    | Ast.Number _ | Ast.Literal _ | Ast.Root | Ast.Context -> (0, 0)
    | Ast.Sequence es -> sum (occurrences v) es
    | Ast.Path (o, steps) ->
        let a = occurrences v o in
        let b = sum (fun { Ast.preds; _ } -> sum (occurrences v) preds) steps in
        (fst a + fst b, snd a + snd b)
    | Ast.Filter (e', preds) ->
        let a = occurrences v e' and b = sum (occurrences v) preds in
        (fst a + fst b, snd a + snd b)
    | Ast.Flwor f ->
        sum Fun.id
          [
            sum (function Ast.For (_, e') | Ast.Let (_, e') -> occurrences v e') f.Ast.clauses;
            (match f.Ast.where with Some w -> occurrences v w | None -> (0, 0));
            sum (fun { Ast.key; _ } -> occurrences v key) f.Ast.order;
            occurrences v f.Ast.ret;
          ]
    | Ast.Quantified (_, binds, sat) ->
        let a = sum (fun (_, e') -> occurrences v e') binds and b = occurrences v sat in
        (fst a + fst b, snd a + snd b)
    | Ast.If (a, b, c) -> sum (occurrences v) [ a; b; c ]
    | Ast.Or (a, b) | Ast.And (a, b) | Ast.Compare (_, a, b) | Ast.Arith (_, a, b)
    | Ast.Node_before (a, b) | Ast.Node_after (a, b) ->
        sum (occurrences v) [ a; b ]
    | Ast.Neg a -> occurrences v a
    | Ast.Call (_, args) -> sum (occurrences v) args
    | Ast.Elem_ctor (_, attrs, content) ->
        let a =
          sum
            (fun (_, pieces) ->
              sum (function Ast.A_expr e' -> occurrences v e' | Ast.A_text _ -> (0, 0)) pieces)
            attrs
        in
        let b =
          sum (function Ast.C_expr e' -> occurrences v e' | Ast.C_text _ -> (0, 0)) content
        in
        (fst a + fst b, snd a + snd b)

  let rec substitute_count v inner (e : Ast.expr) : Ast.expr =
    let go = substitute_count v inner in
    match e with
    | Ast.Call (("count" | "fn:count"), [ Ast.Var x ]) when String.equal x v ->
        Ast.Call ("count", [ inner ])
    | Ast.Number _ | Ast.Literal _ | Ast.Var _ | Ast.Root | Ast.Context -> e
    | Ast.Sequence es -> Ast.Sequence (List.map go es)
    | Ast.Path (o, steps) ->
        Ast.Path (go o, List.map (fun st -> { st with Ast.preds = List.map go st.Ast.preds }) steps)
    | Ast.Filter (e', preds) -> Ast.Filter (go e', List.map go preds)
    | Ast.Flwor f ->
        Ast.Flwor
          {
            clauses =
              List.map
                (function Ast.For (x, e') -> Ast.For (x, go e') | Ast.Let (x, e') -> Ast.Let (x, go e'))
                f.Ast.clauses;
            where = Option.map go f.Ast.where;
            order = List.map (fun o -> { o with Ast.key = go o.Ast.key }) f.Ast.order;
            ret = go f.Ast.ret;
          }
    | Ast.Quantified (q, binds, sat) ->
        Ast.Quantified (q, List.map (fun (x, e') -> (x, go e')) binds, go sat)
    | Ast.If (a, b, c) -> Ast.If (go a, go b, go c)
    | Ast.Or (a, b) -> Ast.Or (go a, go b)
    | Ast.And (a, b) -> Ast.And (go a, go b)
    | Ast.Compare (op, a, b) -> Ast.Compare (op, go a, go b)
    | Ast.Arith (op, a, b) -> Ast.Arith (op, go a, go b)
    | Ast.Neg a -> Ast.Neg (go a)
    | Ast.Node_before (a, b) -> Ast.Node_before (go a, go b)
    | Ast.Node_after (a, b) -> Ast.Node_after (go a, go b)
    | Ast.Call (f, args) -> Ast.Call (f, List.map go args)
    | Ast.Elem_ctor (tag, attrs, content) ->
        Ast.Elem_ctor
          ( tag,
            List.map
              (fun (k, pieces) ->
                ( k,
                  List.map
                    (function Ast.A_expr e' -> Ast.A_expr (go e') | Ast.A_text t -> Ast.A_text t)
                    pieces ))
              attrs,
            List.map
              (function Ast.C_expr e' -> Ast.C_expr (go e') | Ast.C_text t -> Ast.C_text t)
              content )

  let binds_name v clause =
    match clause with Ast.For (x, _) | Ast.Let (x, _) -> String.equal x v

  let rec inline_counted_lets (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Flwor f ->
        let rec rewrite_clauses = function
          | [] -> ([], Fun.id)
          | (Ast.Let (v, (Ast.Flwor _ as inner)) as clause) :: rest ->
              let rest', wrap_rest = rewrite_clauses rest in
              if List.exists (binds_name v) rest' then (clause :: rest', wrap_rest)
              else
                let rest_f =
                  {
                    Ast.clauses = rest';
                    where = f.Ast.where;
                    order = f.Ast.order;
                    ret = f.Ast.ret;
                  }
                in
                let total, counted = occurrences v (Ast.Flwor rest_f) in
                if total > 0 && total = counted then
                  (rest', fun body -> wrap_rest (substitute_count v inner body))
                else (clause :: rest', wrap_rest)
          | clause :: rest ->
              let rest', wrap_rest = rewrite_clauses rest in
              (clause :: rest', wrap_rest)
        in
        let clauses, wrap = rewrite_clauses f.Ast.clauses in
        let f = { f with Ast.clauses } in
        let f =
          match wrap (Ast.Flwor f) with
          | Ast.Flwor f' -> f'
          | _ -> f
        in
        Ast.Flwor
          {
            clauses =
              List.map
                (function
                  | Ast.For (x, e') -> Ast.For (x, inline_counted_lets e')
                  | Ast.Let (x, e') -> Ast.Let (x, inline_counted_lets e'))
                f.Ast.clauses;
            where = Option.map inline_counted_lets f.Ast.where;
            order = List.map (fun o -> { o with Ast.key = inline_counted_lets o.Ast.key }) f.Ast.order;
            ret = inline_counted_lets f.Ast.ret;
          }
    | Ast.Number _ | Ast.Literal _ | Ast.Var _ | Ast.Root | Ast.Context -> e
    | Ast.Sequence es -> Ast.Sequence (List.map inline_counted_lets es)
    | Ast.Path (o, steps) ->
        Ast.Path
          ( inline_counted_lets o,
            List.map
              (fun st -> { st with Ast.preds = List.map inline_counted_lets st.Ast.preds })
              steps )
    | Ast.Filter (e', preds) ->
        Ast.Filter (inline_counted_lets e', List.map inline_counted_lets preds)
    | Ast.Quantified (q, binds, sat) ->
        Ast.Quantified
          (q, List.map (fun (x, e') -> (x, inline_counted_lets e')) binds, inline_counted_lets sat)
    | Ast.If (a, b, c) ->
        Ast.If (inline_counted_lets a, inline_counted_lets b, inline_counted_lets c)
    | Ast.Or (a, b) -> Ast.Or (inline_counted_lets a, inline_counted_lets b)
    | Ast.And (a, b) -> Ast.And (inline_counted_lets a, inline_counted_lets b)
    | Ast.Compare (op, a, b) -> Ast.Compare (op, inline_counted_lets a, inline_counted_lets b)
    | Ast.Arith (op, a, b) -> Ast.Arith (op, inline_counted_lets a, inline_counted_lets b)
    | Ast.Neg a -> Ast.Neg (inline_counted_lets a)
    | Ast.Node_before (a, b) -> Ast.Node_before (inline_counted_lets a, inline_counted_lets b)
    | Ast.Node_after (a, b) -> Ast.Node_after (inline_counted_lets a, inline_counted_lets b)
    | Ast.Call (fname, args) -> Ast.Call (fname, List.map inline_counted_lets args)
    | Ast.Elem_ctor (tag, attrs, content) ->
        Ast.Elem_ctor
          ( tag,
            List.map
              (fun (k, pieces) ->
                ( k,
                  List.map
                    (function
                      | Ast.A_expr e' -> Ast.A_expr (inline_counted_lets e')
                      | Ast.A_text t -> Ast.A_text t)
                    pieces ))
              attrs,
            List.map
              (function
                | Ast.C_expr e' -> Ast.C_expr (inline_counted_lets e')
                | Ast.C_text t -> Ast.C_text t)
              content )

  (* --- vectorized path plans -------------------------------------------- *)

  (* An absolute child/descendant path over name/star tests, with at most
     an attribute-equality predicate per step, maps onto the id algebra of
     {!Xmark_relational.Vec_ops}.  Anything else — positional predicates,
     text tests, nested paths, non-Root origins — stays on the scalar
     interpreter.  Attribute-equality predicates are position-independent,
     so filtering the merged id set is equivalent to the scalar per-node
     predicate application. *)
  let vec_pred store decode preds =
    match preds with
    | [] -> Some []
    | [
     Ast.Compare
       ( Ast.Eq,
         Ast.Path (Ast.Context, [ { Ast.axis = Ast.Attribute; test = Ast.Name a; preds = [] } ]),
         Ast.Literal s );
    ]
    | [
     Ast.Compare
       ( Ast.Eq,
         Ast.Literal s,
         Ast.Path (Ast.Context, [ { Ast.axis = Ast.Attribute; test = Ast.Name a; preds = [] } ]) );
    ] ->
        let attr = Symbol.to_string a in
        (* An id-keyed equality belongs to the scalar engine's id-index
           shortcut (a single lookup); enumerating an extent to filter
           it here is strictly worse.  Decline, so the step and its
           suffix stay scalar, whenever the backend has an id index. *)
        if String.equal attr "id" && S.id_lookup store s <> None then None
        else
          Some
            [
              Vec.Select
                {
                  Vec.sel_label = Printf.sprintf "@%s = %S" attr s;
                  sel_est = 0.1;
                  sel_fn = (fun id -> S.attribute store (decode id) attr = Some s);
                };
            ]
    | _ -> None

  let vec_test = function
    | Ast.Name n -> Some (Vec.Tag (n : Symbol.t :> int))
    | Ast.Star -> Some Vec.Star
    | Ast.Text_test | Ast.Any_kind -> None

  (* Longest vectorizable prefix: logical steps for it, plus the suffix
     that must stay scalar (e.g. a trailing [text()] step). *)
  let vec_translate store decode steps =
    let rec go acc = function
      | [] -> (List.rev acc, [])
      | ({ Ast.axis; test; preds } :: rest) as remaining -> (
          match (axis, vec_test test, vec_pred store decode preds) with
          | (Ast.Child | Ast.Descendant), Some t, Some sel ->
              let step =
                match axis with Ast.Child -> Vec.Child t | _ -> Vec.Descendant t
              in
              go (List.rev_append (step :: sel) acc) rest
          | _ -> (List.rev acc, remaining))
    in
    match go [] steps with
    | [], _ -> None
    | lsteps, suffix -> Some (lsteps, suffix)

  (* Compile a physical plan for every vectorizable absolute path in the
     query (including inside function bodies and predicates), so execution
     is a pure table lookup. *)
  let collect_vec_plans c =
    match c.vec with
    | None -> ()
    | Some (adapter, decode) ->
        let consider steps =
          if not (Hashtbl.mem c.vec_plans steps) then
            match vec_translate c.store decode steps with
            | Some (lsteps, suffix) ->
                Hashtbl.replace c.vec_plans steps (Vec.compile adapter lsteps, suffix)
            | None -> ()
        in
        let rec walk (e : Ast.expr) =
          match e with
          | Ast.Number _ | Ast.Literal _ | Ast.Var _ | Ast.Root | Ast.Context -> ()
          | Ast.Sequence es -> List.iter walk es
          | Ast.Path (o, steps) ->
              (match o with Ast.Root -> consider steps | _ -> ());
              walk o;
              List.iter (fun { Ast.preds; _ } -> List.iter walk preds) steps
          | Ast.Filter (e', preds) ->
              walk e';
              List.iter walk preds
          | Ast.Flwor f ->
              List.iter (function Ast.For (_, e') | Ast.Let (_, e') -> walk e') f.clauses;
              Option.iter walk f.where;
              List.iter (fun { Ast.key; _ } -> walk key) f.order;
              walk f.ret
          | Ast.Quantified (_, binds, sat) ->
              List.iter (fun (_, e') -> walk e') binds;
              walk sat
          | Ast.If (a, b, c') ->
              walk a;
              walk b;
              walk c'
          | Ast.Or (a, b)
          | Ast.And (a, b)
          | Ast.Compare (_, a, b)
          | Ast.Arith (_, a, b)
          | Ast.Node_before (a, b)
          | Ast.Node_after (a, b) ->
              walk a;
              walk b
          | Ast.Neg a -> walk a
          | Ast.Call (_, args) -> List.iter walk args
          | Ast.Elem_ctor (_, attrs, content) ->
              List.iter
                (fun (_, pieces) ->
                  List.iter (function Ast.A_expr e' -> walk e' | Ast.A_text _ -> ()) pieces)
                attrs;
              List.iter (function Ast.C_expr e' -> walk e' | Ast.C_text _ -> ()) content
        in
        List.iter (fun { Ast.body; _ } -> walk body) c.query.Ast.functions;
        walk c.query.Ast.main

  let compile ?(optimize = false) store query =
    let query =
      if optimize then
        {
          Ast.functions =
            List.map
              (fun f -> { f with Ast.body = inline_counted_lets f.Ast.body })
              query.Ast.functions;
          main = inline_counted_lets query.Ast.main;
        }
      else query
    in
    let funcs = Hashtbl.create 8 in
    List.iter
      (fun { Ast.fname; params; body } -> Hashtbl.replace funcs fname (params, body))
      query.Ast.functions;
    let c =
      { store; query; funcs; tag_arrays = Hashtbl.create 16; optimize;
        join_tables = Hashtbl.create 8; ineq_tables = Hashtbl.create 8;
        (* the adapter build decodes columns and materializes extents;
           skip all of it when vectorized execution is switched off *)
        vec = (if Vec.is_enabled () then S.vec store else None);
        vec_plans = Hashtbl.create 8 }
    in
    static_check c;
    collect_vec_plans c;
    c

  let explain_vec c =
    let render_step { Ast.axis; test; preds } =
      let sep = match axis with Ast.Descendant -> "//" | _ -> "/" in
      let t =
        match test with
        | Ast.Name n -> Symbol.to_string n
        | Ast.Star -> "*"
        | Ast.Text_test -> "text()"
        | Ast.Any_kind -> "node()"
      in
      let p = String.concat "" (List.map (fun _ -> "[...]") preds) in
      sep ^ t ^ p
    in
    Hashtbl.fold
      (fun steps (plan, suffix) acc ->
        let lines =
          Vec.explain plan
          @ List.map (fun s -> "scalar tail: " ^ render_step s) suffix
        in
        (String.concat "" (List.map render_step steps), lines) :: acc)
      c.vec_plans []
    |> List.sort compare

  let tag_array c tag =
    match Hashtbl.find_opt c.tag_arrays tag with
    | Some a ->
        Stats.incr "tag_array_cache_hits";
        a
    | None ->
        Stats.incr "tag_array_cache_misses";
        let a = Option.map Array.of_list (S.tag_nodes c.store tag) in
        Hashtbl.replace c.tag_arrays tag a;
        a

  (* --- item utilities --------------------------------------------------- *)

  let is_node = function
    | D | N _ | C _ | A _ -> true
    | Num _ | Str _ | Bool _ -> false

  let node_order c = function
    | D -> -1
    | N n -> S.order c.store n
    | C d -> Dom.order_exn d
    | A a -> a.aowner_order
    | Num _ | Str _ | Bool _ -> err "document order of an atomic value"

  let item_equal a b =
    match (a, b) with
    | D, D -> true
    | N x, N y -> x == y || compare x y = 0
    | C x, C y -> x == y
    | A x, A y -> x == y || x = y
    | _ -> false

  (* Sort stored nodes by document order and remove duplicates; constructed
     nodes keep sequence order (cross-tree document order is undefined). *)
  let doc_order_dedup c items =
    let all_stored = List.for_all (function N _ -> true | _ -> false) items in
    if all_stored then begin
      let arr = Array.of_list items in
      Array.sort (fun a b -> compare (node_order c a) (node_order c b)) arr;
      let out = ref [] in
      Array.iter
        (fun it ->
          match !out with
          | prev :: _ when node_order c prev = node_order c it -> ()
          | _ -> out := it :: !out)
        arr;
      List.rev !out
    end
    else
      let seen = ref [] in
      List.filter
        (fun it ->
          if List.exists (item_equal it) !seen then false
          else begin
            seen := it :: !seen;
            true
          end)
        items

  let string_value_of ctx = function
    | D -> S.string_value ctx.c.store (S.root ctx.c.store)
    | N n -> S.string_value ctx.c.store n
    | C d -> Dom.string_value d
    | A a -> a.avalue
    | Str s -> s
    | Bool b -> if b then "true" else "false"
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
        else Printf.sprintf "%.12g" f

  let atomize_item ctx = function
    | (D | N _ | C _ | A _) as n -> Str (string_value_of ctx n)
    | atom -> atom

  let atomize ctx v = List.map (atomize_item ctx) v

  let to_number_opt = function
    | Num f -> Some f
    | Str s -> float_of_string_opt (String.trim s)
    | Bool b -> Some (if b then 1.0 else 0.0)
    | D | N _ | C _ | A _ -> None

  (* Effective boolean value. *)
  let ebv = function
    | [] -> false
    | [ Bool b ] -> b
    | [ Num f ] -> f <> 0.0 && not (Float.is_nan f)
    | [ Str s ] -> s <> ""
    | (D | N _ | C _ | A _) :: _ -> true
    | _ :: _ :: _ -> true

  (* --- navigation over both stored and constructed nodes ---------------- *)

  let child_items ctx = function
    | D -> [ N (S.root ctx.c.store) ]
    | N n -> List.map (fun x -> N x) (S.children ctx.c.store n)
    | C d -> List.map (fun x -> C x) (Dom.children d)
    | A _ | Num _ | Str _ | Bool _ -> err "child step on a non-element item"

  let item_kind ctx = function
    | D -> `Element
    | N n -> S.kind ctx.c.store n
    | C d -> if Dom.is_element d then `Element else `Text
    | A _ | Num _ | Str _ | Bool _ -> err "node kind of an atomic value"

  let item_name ctx = function
    | D -> ""
    | N n -> Symbol.to_string (S.name ctx.c.store n)
    | C d -> Dom.name_string d
    | A a -> a.aname
    | Num _ | Str _ | Bool _ -> err "node name of an atomic value"

  (* Symbol-typed twin of [item_name] for name tests: no string ever
     materializes on the hot path. *)
  let item_name_sym ctx = function
    | D -> Symbol.empty
    | N n -> S.name ctx.c.store n
    | C d -> Dom.name_sym d
    | A a -> Symbol.intern a.aname
    | Num _ | Str _ | Bool _ -> err "node name of an atomic value"

  let matches_test ctx test it =
    match test with
    | Ast.Name tag -> item_kind ctx it = `Element && Symbol.equal (item_name_sym ctx it) tag
    | Ast.Star -> item_kind ctx it = `Element
    | Ast.Text_test -> item_kind ctx it = `Text
    | Ast.Any_kind -> true

  let rec collect_descendants ctx acc it =
    Cancel.poll ();
    let kids = child_items ctx it in
    List.fold_left
      (fun acc k ->
        let acc = k :: acc in
        match item_kind ctx k with
        | `Element -> collect_descendants ctx acc k
        | `Text -> acc)
      acc kids

  (* Fused //tag scan for stores without extent indexes: walk the tree at
     the node level and cons an item only for symbol-equal hits, instead
     of materializing an item per descendant and filtering afterwards.
     On a factor-0.1 document a //item scan visits ~500k nodes for ~20k
     hits, so the unfused version allocates 25x more items. *)
  let collect_descendants_named ctx it tag =
    let store = ctx.c.store in
    let rec go_n acc n =
      Cancel.poll ();
      List.fold_left
        (fun acc k ->
          match S.kind store k with
          | `Element ->
              let acc =
                if Symbol.equal (S.name store k) tag then N k :: acc else acc
              in
              go_n acc k
          | `Text -> acc)
        acc (S.children store n)
    in
    let rec go_c acc d =
      Cancel.poll ();
      List.fold_left
        (fun acc k ->
          if Dom.is_element k then
            let acc = if Symbol.equal (Dom.name_sym k) tag then C k :: acc else acc in
            go_c acc k
          else acc)
        acc (Dom.children d)
    in
    match it with
    | D ->
        let root = S.root store in
        let acc =
          if Symbol.equal (S.name store root) tag then [ N root ] else []
        in
        List.rev (go_n acc root)
    | N n -> List.rev (go_n [] n)
    | C d -> List.rev (go_c [] d)
    | A _ | Num _ | Str _ | Bool _ -> err "child step on a non-element item"

  (* Same fusion for the child axis: test the symbol while walking the
     child list, wrapping only hits into items. *)
  let children_named ctx it tag =
    let store = ctx.c.store in
    match it with
    | D ->
        let r = S.root store in
        if Symbol.equal (S.name store r) tag then [ N r ] else []
    | N n ->
        List.filter_map
          (fun k ->
            match S.kind store k with
            | `Element when Symbol.equal (S.name store k) tag -> Some (N k)
            | `Element | `Text -> None)
          (S.children store n)
    | C d ->
        List.filter_map
          (fun k ->
            if Dom.is_element k && Symbol.equal (Dom.name_sym k) tag then Some (C k)
            else None)
          (Dom.children d)
    | A _ | Num _ | Str _ | Bool _ -> err "child step on a non-element item"

  (* Descendants with a given tag, using extent + interval indexes when the
     backend provides them — the structural-summary fast path. *)
  let descendants_named ctx it tag =
    match it with
    | D -> Option.map (fun a -> Array.to_list (Array.map (fun n -> N n) a)) (tag_array ctx.c tag)
    | N n -> (
        match (tag_array ctx.c tag, S.subtree_interval ctx.c.store n) with
        | Some extent, Some (lo, hi) ->
            (* binary search the first extent member with order >= lo *)
            let len = Array.length extent in
            let rec lower l r =
              if l >= r then l
              else
                let m = (l + r) / 2 in
                if S.order ctx.c.store extent.(m) >= lo then lower l m else lower (m + 1) r
            in
            let start = lower 0 len in
            let rec take i acc =
              if i >= len then List.rev acc
              else
                let x = extent.(i) in
                let o = S.order ctx.c.store x in
                if o >= hi then List.rev acc
                else take (i + 1) (if o = lo then acc else N x :: acc)
            in
            Some (take start [])
        | _ -> None)
    | C _ | A _ | Num _ | Str _ | Bool _ -> None

  let attribute_items ctx it =
    let order = match it with N _ | C _ -> node_order ctx.c it | _ -> 0 in
    match it with
    | D -> []
    | N n ->
        List.map (fun (k, v) -> A { aowner_order = order; aname = k; avalue = v })
          (S.attributes ctx.c.store n)
    | C d ->
        List.map (fun (k, v) -> A { aowner_order = order; aname = k; avalue = v })
          (match d.Dom.desc with Dom.Element e -> e.Dom.attrs | Dom.Text _ -> [])
    | A _ | Num _ | Str _ | Bool _ -> err "attribute step on a non-element item"

  let parent_item ctx = function
    | D -> None
    | N n -> (
        match S.parent ctx.c.store n with
        | Some p -> Some (N p)
        | None -> Some D)
    | C d -> Option.map (fun p -> C p) d.Dom.parent
    | A _ | Num _ | Str _ | Bool _ -> err "parent step on a non-element item"

  (* --- conversion to DOM (construction and result materialization) ------ *)

  let rec store_to_dom store n =
    match S.kind store n with
    | `Text -> Dom.text (S.text store n)
    | `Element ->
        Stats.incr "elements_materialized";
        Dom.element_sym
          ~attrs:(S.attributes store n)
          ~children:(List.map (store_to_dom store) (S.children store n))
          (S.name store n)

  let item_to_dom ctx = function
    | D -> store_to_dom ctx.c.store (S.root ctx.c.store)
    | N n -> store_to_dom ctx.c.store n
    | C d -> Dom.deep_copy d
    | A a -> Dom.text a.avalue
    | atom -> Dom.text (string_value_of ctx atom)

  (* --- evaluation -------------------------------------------------------- *)

  let lookup_var ctx v =
    match List.assoc_opt v ctx.vars with
    | Some value -> value
    | None -> err "undefined variable $%s" v

  (* Detect the [@id = "literal"] predicate shape the ID index serves. *)
  let sym_id = Symbol.intern "id"

  let id_predicate_literal preds =
    match preds with
    | Ast.Compare
        ( Ast.Eq,
          Ast.Path (Ast.Context, [ { Ast.axis = Ast.Attribute; test = Ast.Name a; preds = [] } ]),
          Ast.Literal s )
      :: rest
      when Symbol.equal a sym_id ->
        Some (s, rest)
    | Ast.Compare
        ( Ast.Eq,
          Ast.Literal s,
          Ast.Path (Ast.Context, [ { Ast.axis = Ast.Attribute; test = Ast.Name a; preds = [] } ]) )
      :: rest
      when Symbol.equal a sym_id ->
        Some (s, rest)
    | _ -> None

  let rec eval ctx (e : Ast.expr) : value =
    match e with
    | Ast.Number f -> [ Num f ]
    | Ast.Literal s -> [ Str s ]
    | Ast.Var v -> lookup_var ctx v
    | Ast.Sequence es -> List.concat_map (eval ctx) es
    | Ast.Root -> [ D ]
    | Ast.Context -> (
        match ctx.citem with
        | Some it -> [ it ]
        | None -> err "no context item")
    | Ast.Path (Ast.Root, steps)
      when ctx.c.vec <> None && Vec.is_enabled () && Hashtbl.mem ctx.c.vec_plans steps ->
        let adapter, decode = Option.get ctx.c.vec in
        let plan, suffix = Hashtbl.find ctx.c.vec_plans steps in
        Stats.incr ~by:(List.length steps - List.length suffix) "path_steps";
        let ids = Vec.execute adapter ~poll:Cancel.poll plan in
        (* ids are sorted ascending = document order for these backends,
           so this is already the doc_order_dedup form *)
        let start = Array.fold_right (fun id acc -> N (decode id) :: acc) ids [] in
        List.fold_left (eval_step ctx) start suffix
    | Ast.Path (origin, steps) ->
        (match origin with
        | Ast.Root when ctx.c.vec <> None && Vec.is_enabled () -> Stats.incr "vec_fallbacks"
        | _ -> ());
        let start = eval ctx origin in
        List.fold_left (eval_step ctx) start steps
    | Ast.Filter (e, preds) ->
        let v = eval ctx e in
        List.fold_left (filter_sequence ctx) v preds
    | Ast.Flwor f -> eval_flwor ctx f
    | Ast.Quantified (q, binds, sat) -> [ Bool (eval_quantified ctx q binds sat) ]
    | Ast.If (c, t, e) -> if ebv (eval ctx c) then eval ctx t else eval ctx e
    | Ast.Or (a, b) -> [ Bool (ebv (eval ctx a) || ebv (eval ctx b)) ]
    | Ast.And (a, b) -> [ Bool (ebv (eval ctx a) && ebv (eval ctx b)) ]
    | Ast.Compare (op, a, b) -> [ Bool (general_compare ctx op (eval ctx a) (eval ctx b)) ]
    | Ast.Arith (op, a, b) -> eval_arith ctx op a b
    | Ast.Neg a -> (
        match atomize ctx (eval ctx a) with
        | [] -> []
        | it :: _ -> [ Num (-.Option.value ~default:Float.nan (to_number_opt it)) ])
    | Ast.Call (f, args) -> eval_call ctx f args
    | Ast.Elem_ctor (tag, attrs, content) -> [ eval_ctor ctx tag attrs content ]
    | Ast.Node_before (a, b) -> [ Bool (node_order_compare ctx a b ( < )) ]
    | Ast.Node_after (a, b) -> [ Bool (node_order_compare ctx a b ( > )) ]

  and node_order_compare ctx a b rel =
    match (eval ctx a, eval ctx b) with
    | [ x ], [ y ] when is_node x && is_node y -> rel (node_order ctx.c x) (node_order ctx.c y)
    | [], _ | _, [] -> false
    | _ -> err "node comparison requires single nodes"

  (* One path step applied to a whole node sequence.  The dispatch is
     shaped to cost nothing on the scalar path: no tuples, no options,
     no record rebuilds per step. *)
  and eval_step ctx input ({ Ast.axis; _ } as step) =
    Stats.incr "path_steps";
    match axis with
    | Ast.Descendant -> (
        match ctx.c.vec with
        | Some va when Vec.is_enabled () && input <> [] -> (
            match vec_descendant_step ctx va input step.Ast.test step.Ast.preds with
            | Some result -> result
            | None -> eval_step_scalar ctx input step)
        | _ -> eval_step_scalar ctx input step)
    | _ -> eval_step_scalar ctx input step

  (* Step-level vectorization: a descendant step over a sequence of
     stored nodes becomes an interval join (or closure walk) on the id
     algebra — the case the scalar evaluator can only serve with a
     per-node tree walk when the backend lacks [subtree_interval].
     Covers the [$x//tag] steps of Q6/Q7 whose origin is a variable,
     which the whole-path planner cannot see. *)
  and vec_descendant_step ctx (adapter, decode) input test preds =
    match (vec_test test, vec_pred ctx.c.store decode preds) with
    | Some t, Some sel ->
        if List.for_all (function N _ -> true | _ -> false) input then begin
          let b = Xmark_relational.Batch.create ~capacity:(List.length input) () in
          List.iter
            (function N n -> Xmark_relational.Batch.push b (S.order ctx.c.store n) | _ -> ())
            input;
          let ids = Xmark_relational.Batch.sorted_unique b in
          let plan =
            Vec.compile_from adapter
              ~est_in:(float_of_int (Array.length ids))
              (Vec.Descendant t :: sel)
          in
          let out = Vec.execute_from adapter ~poll:Cancel.poll plan ids in
          Some (Array.fold_right (fun id acc -> N (decode id) :: acc) out [])
        end
        else None
    | _ -> None

  and eval_step_scalar ctx input { Ast.axis; test; preds } =
    let per_node it =
      Cancel.poll ();
      match axis with
      | Ast.Child -> (
          (* ID-index shortcut for  tag[@id = "..."]  child steps. *)
          match (test, id_predicate_literal preds) with
          | Ast.Name tag, Some (idval, rest_preds) -> (
              match S.id_lookup ctx.c.store idval with
              | Some candidate -> (
                  match candidate with
                  | Some n
                    when Symbol.equal (S.name ctx.c.store n) tag
                         && (match S.parent ctx.c.store n with
                            | Some p -> item_equal (N p) it
                            | None -> false) ->
                      apply_predicates ctx [ N n ] rest_preds
                  | Some _ | None -> [])
              | None ->
                  apply_predicates ctx (children_named ctx it tag) preds)
          | Ast.Name tag, None ->
              apply_predicates ctx (children_named ctx it tag) preds
          | (Ast.Star | Ast.Text_test | Ast.Any_kind), _ ->
              let selected = List.filter (matches_test ctx test) (child_items ctx it) in
              apply_predicates ctx selected preds)
      | Ast.Descendant ->
          let selected =
            match test with
            | Ast.Name tag -> (
                match descendants_named ctx it tag with
                | Some nodes -> nodes
                | None -> collect_descendants_named ctx it tag)
            | _ -> List.filter (matches_test ctx test) (List.rev (collect_descendants ctx [] it))
          in
          apply_predicates ctx selected preds
      | Ast.Attribute ->
          let selected =
            match test with
            | Ast.Name a ->
                let a = Symbol.to_string a in
                List.filter (fun x -> String.equal (item_name ctx x) a) (attribute_items ctx it)
            | Ast.Star -> attribute_items ctx it
            | Ast.Text_test | Ast.Any_kind -> []
          in
          apply_predicates ctx selected preds
      | Ast.Parent ->
          let selected =
            match parent_item ctx it with
            | Some p when matches_test ctx test p -> [ p ]
            | Some _ | None -> []
          in
          apply_predicates ctx selected preds
      | Ast.Self ->
          let selected = if matches_test ctx test it then [ it ] else [] in
          apply_predicates ctx selected preds
    in
    doc_order_dedup ctx.c (List.concat_map per_node input)

  (* Predicates relative to the node list selected for one context node. *)
  and apply_predicates ctx selected preds = List.fold_left (filter_sequence ctx) selected preds

  and filter_sequence ctx selected pred =
    let size = List.length selected in
    let keep i it =
      Cancel.poll ();
      let ctx' = { ctx with citem = Some it; cpos = i + 1; csize = size } in
      match eval ctx' pred with
      | [ Num f ] -> f = float_of_int (i + 1)
      | v -> ebv v
    in
    List.filteri keep selected

  and general_compare ctx op left right =
    let left = atomize ctx left and right = atomize ctx right in
    let cmp_pair a b =
      let numeric =
        match (a, b) with
        | Num _, _ | _, Num _ | Bool _, _ | _, Bool _ -> true
        | _ -> false
      in
      if numeric then
        let x = Option.value ~default:Float.nan (to_number_opt a) in
        let y = Option.value ~default:Float.nan (to_number_opt b) in
        if Float.is_nan x || Float.is_nan y then false
        else
          match op with
          | Ast.Eq -> x = y
          | Ast.Ne -> x <> y
          | Ast.Lt -> x < y
          | Ast.Le -> x <= y
          | Ast.Gt -> x > y
          | Ast.Ge -> x >= y
      else
        let x = string_value_of ctx a and y = string_value_of ctx b in
        let c = String.compare x y in
        match op with
        | Ast.Eq -> c = 0
        | Ast.Ne -> c <> 0
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | Ast.Ge -> c >= 0
    in
    List.exists (fun a -> List.exists (fun b -> cmp_pair a b) right) left

  and eval_arith ctx op a b =
    let va = atomize ctx (eval ctx a) and vb = atomize ctx (eval ctx b) in
    match (va, vb) with
    | [], _ | _, [] -> []
    | x :: _, y :: _ ->
        let x = Option.value ~default:Float.nan (to_number_opt x) in
        let y = Option.value ~default:Float.nan (to_number_opt y) in
        let r =
          match op with
          | Ast.Add -> x +. y
          | Ast.Sub -> x -. y
          | Ast.Mul -> x *. y
          | Ast.Div -> x /. y
          | Ast.Mod -> Float.rem x y
        in
        [ Num r ]

  (* Variables an expression references (a conservative dependence test). *)
  and expr_vars acc (e : Ast.expr) =
    match e with
    | Ast.Var v -> v :: acc
    | Ast.Number _ | Ast.Literal _ | Ast.Root | Ast.Context -> acc
    | Ast.Sequence es -> List.fold_left expr_vars acc es
    | Ast.Path (o, steps) ->
        List.fold_left
          (fun acc { Ast.preds; _ } -> List.fold_left expr_vars acc preds)
          (expr_vars acc o) steps
    | Ast.Filter (e', preds) -> List.fold_left expr_vars (expr_vars acc e') preds
    | Ast.Flwor fl ->
        let acc =
          List.fold_left
            (fun acc -> function Ast.For (_, e') | Ast.Let (_, e') -> expr_vars acc e')
            acc fl.Ast.clauses
        in
        let acc = Option.fold ~none:acc ~some:(expr_vars acc) fl.Ast.where in
        let acc = List.fold_left (fun acc { Ast.key; _ } -> expr_vars acc key) acc fl.Ast.order in
        expr_vars acc fl.Ast.ret
    | Ast.Quantified (_, binds, sat) ->
        expr_vars (List.fold_left (fun acc (_, e') -> expr_vars acc e') acc binds) sat
    | Ast.If (a, b, c) -> expr_vars (expr_vars (expr_vars acc a) b) c
    | Ast.Or (a, b) | Ast.And (a, b) | Ast.Compare (_, a, b) | Ast.Arith (_, a, b)
    | Ast.Node_before (a, b) | Ast.Node_after (a, b) ->
        expr_vars (expr_vars acc a) b
    | Ast.Neg a -> expr_vars acc a
    | Ast.Call (_, args) -> List.fold_left expr_vars acc args
    | Ast.Elem_ctor (_, attrs, content) ->
        let acc =
          List.fold_left
            (fun acc (_, pieces) ->
              List.fold_left
                (fun acc -> function Ast.A_expr e' -> expr_vars acc e' | Ast.A_text _ -> acc)
                acc pieces)
            acc attrs
        in
        List.fold_left
          (fun acc -> function Ast.C_expr e' -> expr_vars acc e' | Ast.C_text _ -> acc)
          acc content

  and uses_var v e = List.mem v (expr_vars [] e)

  and uses_any_var e = expr_vars [] e <> []

  (* Hash-join rewrite:  for $v in SRC where KEY($v) = PROBE(outer) ...
     with a variable-free SRC becomes a build-once / probe-per-tuple hash
     join — the hand-optimized plan shape the paper applied to the
     main-memory systems.  Valid only when every key atomizes to an
     untyped string (general '=' on two untyped values is string
     equality); anything else falls back to the nested loop. *)
  and join_pattern f =
    match f.Ast.clauses with
    | [ Ast.For (v, src) ] when not (uses_any_var src) -> (
        match f.Ast.where with
        | Some (Ast.Compare (Ast.Eq, lhs, rhs)) ->
            (* the build key may depend only on $v (it is cached across
               probes); the probe side must not depend on $v at all *)
            let only_v e = List.for_all (String.equal v) (expr_vars [] e) in
            if uses_var v lhs && only_v lhs && not (uses_var v rhs) then Some (v, src, lhs, rhs)
            else if uses_var v rhs && only_v rhs && not (uses_var v lhs) then
              Some (v, src, rhs, lhs)
            else None
        | _ -> None)
    | _ -> None

  and build_join_table ctx v src key =
    let side = { source = src; key } in
    match Hashtbl.find_opt ctx.c.join_tables side with
    | Some t -> t
    | None ->
        Stats.incr "join_tables_built";
        let items = Array.of_list (eval { ctx with vars = [] } src) in
        let table = Hashtbl.create (2 * (Array.length items + 1)) in
        let usable = ref true in
        Array.iteri
          (fun i it ->
            let keys = atomize ctx (eval { ctx with vars = [ (v, [ it ]) ] } key) in
            List.iter
              (fun k ->
                match k with
                | Str ks ->
                    Hashtbl.replace table ks
                      (i :: Option.value ~default:[] (Hashtbl.find_opt table ks))
                | D | N _ | C _ | A _ | Num _ | Bool _ -> usable := false)
              keys)
          items;
        let t = if !usable then Built (items, table) else Unusable in
        Hashtbl.replace ctx.c.join_tables side t;
        t

  (* Tuple stream for an optimizable FLWOR; None = fall back to the
     nested-loop pipeline. *)
  and try_hash_join ctx f =
    if not ctx.c.optimize then None
    else
      match join_pattern f with
      | None -> None
      | Some (v, src, key, probe) -> (
          match build_join_table ctx v src key with
          | Unusable -> None
          | Built (items, table) ->
              let probe_keys = atomize ctx (eval ctx probe) in
              if Stats.enabled () then
                Stats.incr ~by:(List.length probe_keys) "join_probes";
              if
                List.exists
                  (function Str _ -> false | D | N _ | C _ | A _ | Num _ | Bool _ -> true)
                  probe_keys
              then None
              else begin
                let matched = Hashtbl.create 16 in
                List.iter
                  (function
                    | Str ks ->
                        List.iter
                          (fun i -> Hashtbl.replace matched i ())
                          (Option.value ~default:[] (Hashtbl.find_opt table ks))
                    | D | N _ | C _ | A _ | Num _ | Bool _ -> ())
                  probe_keys;
                let indices =
                  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) matched [])
                in
                Some
                  (List.map
                     (fun i -> { ctx with vars = (v, [ items.(i) ]) :: ctx.vars })
                     indices)
              end)

  (* count(for $v in SRC where A op B return $v) with a numeric inequality
     between a $v-only side and an outer side: answered with binary search
     over pre-sorted key arrays instead of a nested loop — the plan shape
     behind the paper's System D numbers for Q11/Q12. *)
  (* Statically numeric: every item the expression yields is a number, so
     the general comparison is guaranteed to be numeric (untyped-vs-untyped
     would be a string comparison, which the fusion must not change). *)
  and always_numeric (e : Ast.expr) =
    match e with
    | Ast.Number _ -> true
    | Ast.Arith _ | Ast.Neg _ -> true
    | Ast.Call (("count" | "sum" | "avg" | "number" | "round" | "floor" | "ceiling" | "abs"
                | "string-length" | "last" | "position"), _) ->
        true
    | Ast.If (_, t, e') -> always_numeric t && always_numeric e'
    | Ast.Sequence es -> es <> [] && List.for_all always_numeric es
    | _ -> false

  and ineq_pattern f =
    match f.Ast.clauses with
    | [ Ast.For (v, src) ] when not (uses_any_var src) -> (
        match (f.Ast.where, f.Ast.order, f.Ast.ret) with
        | Some (Ast.Compare (op, lhs, rhs)), [], Ast.Var rv
          when String.equal rv v
               && (op = Ast.Gt || op = Ast.Lt || op = Ast.Ge || op = Ast.Le)
               && (always_numeric lhs || always_numeric rhs) ->
            let only_v e = List.for_all (String.equal v) (expr_vars [] e) in
            if uses_var v lhs && only_v lhs && not (uses_var v rhs) then
              (* KEY($v) op PROBE  — flip to PROBE op' KEY *)
              let flip = function
                | Ast.Gt -> Ast.Lt | Ast.Lt -> Ast.Gt | Ast.Ge -> Ast.Le | Ast.Le -> Ast.Ge
                | o -> o
              in
              Some (v, src, lhs, flip op, rhs)
            else if uses_var v rhs && only_v rhs && not (uses_var v lhs) then
              Some (v, src, rhs, op, lhs)
            else None
        | _ -> None)
    | _ -> None

  and build_ineq_table ctx v src key =
    let side = { source = src; key } in
    match Hashtbl.find_opt ctx.c.ineq_tables side with
    | Some t -> t
    | None ->
        Stats.incr "join_tables_built";
        let items = eval { ctx with vars = [] } src in
        let minmax =
          List.filter_map
            (fun it ->
              let keys =
                atomize ctx (eval { ctx with vars = [ (v, [ it ]) ] } key)
                |> List.filter_map to_number_opt
                |> List.filter (fun f -> not (Float.is_nan f))
              in
              match keys with
              | [] -> None
              | k :: rest ->
                  Some
                    (List.fold_left Float.min k rest, List.fold_left Float.max k rest))
            items
        in
        let mins = Array.of_list (List.map fst minmax) in
        let maxs = Array.of_list (List.map snd minmax) in
        Array.sort Float.compare mins;
        Array.sort Float.compare maxs;
        let t = Some (mins, maxs) in
        Hashtbl.replace ctx.c.ineq_tables side t;
        t

  (* number of elements of a sorted array strictly less than x *)
  and count_lt sorted x =
    let n = Array.length sorted in
    let rec lower l r = if l >= r then l else
      let m = (l + r) / 2 in
      if sorted.(m) < x then lower (m + 1) r else lower l m
    in
    lower 0 n

  and count_le sorted x =
    let n = Array.length sorted in
    let rec lower l r = if l >= r then l else
      let m = (l + r) / 2 in
      if sorted.(m) <= x then lower (m + 1) r else lower l m
    in
    lower 0 n

  and try_inequality_count ctx e =
    match e with
    | Ast.Flwor f -> (
        match ineq_pattern f with
        | None -> None
        | Some (v, src, key, op, probe) -> (
            match build_ineq_table ctx v src key with
            | None -> None
            | Some (mins, maxs) ->
                let probe_vals =
                  atomize ctx (eval ctx probe)
                  |> List.filter_map to_number_opt
                  |> List.filter (fun f -> not (Float.is_nan f))
                in
                if Stats.enabled () then
                  Stats.incr ~by:(List.length probe_vals) "join_probes";
                if probe_vals = [] then Some 0
                else
                  (* existential semantics: an item passes PROBE op KEY if
                     some probe value does; the extreme probe value decides *)
                  let pmax = List.fold_left Float.max (List.hd probe_vals) probe_vals in
                  let pmin = List.fold_left Float.min (List.hd probe_vals) probe_vals in
                  (* an item with several keys passes via its own extreme *)
                  Some
                    (match op with
                    | Ast.Gt -> count_lt mins pmax  (* p > some key: key_min < p *)
                    | Ast.Ge -> count_le mins pmax
                    | Ast.Lt -> Array.length maxs - count_le maxs pmin
                    | Ast.Le -> Array.length maxs - count_lt maxs pmin
                    | Ast.Eq | Ast.Ne -> assert false)))
    | _ -> None

  and eval_flwor ctx f =
    let tuples =
      match try_hash_join ctx f with
      | Some tuples -> tuples
      | None ->
          let bind_clause ctxs = function
            | Ast.For (v, e) ->
                List.concat_map
                  (fun ctx' ->
                    Cancel.poll ();
                    List.map
                      (fun it -> { ctx' with vars = (v, [ it ]) :: ctx'.vars })
                      (eval ctx' e))
                  ctxs
            | Ast.Let (v, e) ->
                List.map (fun ctx' -> { ctx' with vars = (v, eval ctx' e) :: ctx'.vars }) ctxs
          in
          let tuples = List.fold_left bind_clause [ ctx ] f.Ast.clauses in
          (match f.Ast.where with
          | None -> tuples
          | Some w -> List.filter (fun ctx' -> ebv (eval ctx' w)) tuples)
    in
    let tuples =
      if f.Ast.order = [] then tuples
      else begin
        let keyed =
          List.map
            (fun ctx' ->
              let keys =
                List.map
                  (fun { Ast.key; descending } ->
                    let v = atomize ctx' (eval ctx' key) in
                    (v, descending))
                  f.Ast.order
              in
              (keys, ctx'))
            tuples
        in
        let compare_key (a, desc) (b, _) =
          let c =
            match (a, b) with
            | [], [] -> 0
            | [], _ -> -1  (* empty least *)
            | _, [] -> 1
            | x :: _, y :: _ -> (
                match (x, y) with
                | Num f1, Num f2 -> compare f1 f2
                | _ ->
                    (* untyped data compares as strings *)
                    String.compare (string_value_of ctx x) (string_value_of ctx y))
          in
          if desc then -c else c
        in
        let rec compare_keys ka kb =
          match (ka, kb) with
          | [], [] -> 0
          | a :: ra, b :: rb ->
              let c = compare_key a b in
              if c <> 0 then c else compare_keys ra rb
          | _ -> 0
        in
        List.stable_sort (fun (ka, _) (kb, _) -> compare_keys ka kb) keyed |> List.map snd
      end
    in
    if Stats.enabled () then Stats.incr ~by:(List.length tuples) "tuples_emitted";
    List.concat_map (fun ctx' -> eval ctx' f.Ast.ret) tuples

  and eval_quantified ctx q binds sat =
    let rec go ctx' = function
      | [] -> ebv (eval ctx' sat)
      | (v, e) :: rest ->
          let items = eval ctx' e in
          let test it = go { ctx' with vars = (v, [ it ]) :: ctx'.vars } rest in
          (match q with
          | Ast.Some_ -> List.exists test items
          | Ast.Every -> List.for_all test items)
    in
    go ctx binds

  (* --- element construction --------------------------------------------- *)

  and eval_ctor ctx tag attr_specs content =
    let attr_value pieces =
      String.concat ""
        (List.map
           (function
             | Ast.A_text s -> s
             | Ast.A_expr e ->
                 let v = atomize ctx (eval ctx e) in
                 String.concat " " (List.map (string_value_of ctx) v))
           pieces)
    in
    let attrs = ref (List.map (fun (k, pieces) -> (k, attr_value pieces)) attr_specs) in
    let children = ref [] in
    let add_text s = children := Dom.text s :: !children in
    let add_items v =
      (* Adjacent atomics merge into one text node, space separated. *)
      let flush_atoms atoms =
        if atoms <> [] then
          add_text (String.concat " " (List.rev_map (string_value_of ctx) atoms))
      in
      let rec go atoms = function
        | [] -> flush_atoms atoms
        | (Num _ | Str _ | Bool _) as a :: rest -> go (a :: atoms) rest
        | A a :: rest when !children = [] && atoms = [] ->
            (* attribute nodes ahead of any content attach as attributes *)
            attrs := !attrs @ [ (a.aname, a.avalue) ];
            go [] rest
        | (D | N _ | C _ | A _) as n :: rest ->
            flush_atoms atoms;
            children := item_to_dom ctx n :: !children;
            go [] rest
      in
      go [] v
    in
    List.iter
      (function
        | Ast.C_text s -> add_text s
        | Ast.C_expr e -> add_items (eval ctx e))
      content;
    let node = Dom.element_sym ~attrs:!attrs ~children:(List.rev !children) tag in
    ignore (Dom.index node);
    C node

  (* --- function calls ---------------------------------------------------- *)

  and eval_call ctx f args =
    Stats.incr "function_calls";
    match (f, args) with
    | ("count" | "fn:count"), [ e ] -> (
        match (if ctx.c.optimize then try_inequality_count ctx e else None) with
        | Some n -> [ Num (float_of_int n) ]
        | None -> [ Num (float_of_int (List.length (eval ctx e))) ])
    | "empty", [ e ] -> [ Bool (eval ctx e = []) ]
    | "exists", [ e ] -> [ Bool (eval ctx e <> []) ]
    | "not", [ e ] -> [ Bool (not (ebv (eval ctx e))) ]
    | "boolean", [ e ] -> [ Bool (ebv (eval ctx e)) ]
    | "true", [] -> [ Bool true ]
    | "false", [] -> [ Bool false ]
    | "string", [] -> (
        match ctx.citem with
        | Some it -> [ Str (string_value_of ctx it) ]
        | None -> err "string() with no context item")
    | "string", [ e ] -> (
        match eval ctx e with
        | [] -> [ Str "" ]
        | it :: _ -> [ Str (string_value_of ctx it) ])
    | "data", [ e ] -> atomize ctx (eval ctx e)
    | "number", [ e ] -> (
        match atomize ctx (eval ctx e) with
        | [] -> [ Num Float.nan ]
        | it :: _ -> [ Num (Option.value ~default:Float.nan (to_number_opt it)) ])
    | "contains", [ a; b ] ->
        let s = string_arg ctx a and sub = string_arg ctx b in
        [ Bool (contains_substring s sub) ]
    | "starts-with", [ a; b ] ->
        let s = string_arg ctx a and prefix = string_arg ctx b in
        [
          Bool
            (String.length s >= String.length prefix
            && String.sub s 0 (String.length prefix) = prefix);
        ]
    | "ends-with", [ a; b ] ->
        let s = string_arg ctx a and suffix = string_arg ctx b in
        let ls = String.length s and lx = String.length suffix in
        [ Bool (ls >= lx && String.sub s (ls - lx) lx = suffix) ]
    | "string-length", [ e ] -> [ Num (float_of_int (String.length (string_arg ctx e))) ]
    | "substring", [ e; start ] ->
        let s = string_arg ctx e and st = number_arg ctx start in
        let from = max 0 (int_of_float st - 1) in
        [ Str (if from >= String.length s then "" else String.sub s from (String.length s - from)) ]
    | "substring", [ e; start; len ] ->
        let s = string_arg ctx e in
        let st = int_of_float (number_arg ctx start) - 1 in
        let ln = int_of_float (number_arg ctx len) in
        let from = max 0 st in
        let upto = min (String.length s) (st + ln) in
        [ Str (if upto <= from then "" else String.sub s from (upto - from)) ]
    | "concat", args -> [ Str (String.concat "" (List.map (string_arg ctx) args)) ]
    | "string-join", [ e; sep ] ->
        let sep = string_arg ctx sep in
        let parts = List.map (string_value_of ctx) (atomize ctx (eval ctx e)) in
        [ Str (String.concat sep parts) ]
    | "substring-before", [ a; b ] ->
        let s = string_arg ctx a and sep = string_arg ctx b in
        let ls = String.length s and lx = String.length sep in
        let rec at i =
          if lx = 0 || i + lx > ls then None
          else if String.sub s i lx = sep then Some i
          else at (i + 1)
        in
        [ Str (match at 0 with Some i -> String.sub s 0 i | None -> "") ]
    | "substring-after", [ a; b ] ->
        let s = string_arg ctx a and sep = string_arg ctx b in
        let ls = String.length s and lx = String.length sep in
        let rec at i =
          if lx = 0 || i + lx > ls then None
          else if String.sub s i lx = sep then Some (i + lx)
          else at (i + 1)
        in
        [ Str (match at 0 with Some i -> String.sub s i (ls - i) | None -> "") ]
    | "reverse", [ e ] -> List.rev (eval ctx e)
    | "subsequence", [ e; start ] ->
        let v = eval ctx e in
        let from = int_of_float (Float.round (number_arg ctx start)) in
        List.filteri (fun i _ -> i + 1 >= from) v
    | "subsequence", [ e; start; len ] ->
        let v = eval ctx e in
        let from = int_of_float (Float.round (number_arg ctx start)) in
        let len = int_of_float (Float.round (number_arg ctx len)) in
        List.filteri (fun i _ -> i + 1 >= from && i + 1 < from + len) v
    | "normalize-space", [ e ] ->
        let s = string_arg ctx e in
        let parts = String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s) in
        [ Str (String.concat " " (List.filter (( <> ) "") parts)) ]
    | "upper-case", [ e ] -> [ Str (String.uppercase_ascii (string_arg ctx e)) ]
    | "lower-case", [ e ] -> [ Str (String.lowercase_ascii (string_arg ctx e)) ]
    | "translate", [ e; from_; to_ ] ->
        let s = string_arg ctx e and f = string_arg ctx from_ and t = string_arg ctx to_ in
        let buf = Buffer.create (String.length s) in
        String.iter
          (fun ch ->
            match String.index_opt f ch with
            | None -> Buffer.add_char buf ch
            | Some i -> if i < String.length t then Buffer.add_char buf t.[i])
          s;
        [ Str (Buffer.contents buf) ]
    | "sum", [ e ] ->
        let nums = List.map (fun it -> Option.value ~default:0.0 (to_number_opt it)) (atomize ctx (eval ctx e)) in
        [ Num (List.fold_left ( +. ) 0.0 nums) ]
    | "avg", [ e ] -> (
        match atomize ctx (eval ctx e) with
        | [] -> []
        | v ->
            let nums = List.map (fun it -> Option.value ~default:Float.nan (to_number_opt it)) v in
            [ Num (List.fold_left ( +. ) 0.0 nums /. float_of_int (List.length nums)) ])
    | "min", [ e ] -> fold_minmax ctx e `Min
    | "max", [ e ] -> fold_minmax ctx e `Max
    | "round", [ e ] -> [ Num (Float.round (number_arg ctx e)) ]
    | "floor", [ e ] -> [ Num (Float.floor (number_arg ctx e)) ]
    | "ceiling", [ e ] -> [ Num (Float.ceil (number_arg ctx e)) ]
    | "abs", [ e ] -> [ Num (Float.abs (number_arg ctx e)) ]
    | "zero-or-one", [ e ] -> (
        match eval ctx e with
        | [] -> []
        | [ it ] -> [ it ]
        | _ -> err "zero-or-one: more than one item")
    | "exactly-one", [ e ] -> (
        match eval ctx e with
        | [ it ] -> [ it ]
        | v -> err "exactly-one: %d items" (List.length v))
    | "one-or-more", [ e ] -> (
        match eval ctx e with
        | [] -> err "one-or-more: empty sequence"
        | v -> v)
    | "distinct-values", [ e ] ->
        let v = atomize ctx (eval ctx e) in
        let seen = Hashtbl.create 16 in
        List.filter
          (fun it ->
            let k = string_value_of ctx it in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          v
    | "ft-search", [ tag_e; word_e ] -> (
        (* Full-text keyword lookup: elements with the given tag whose
           string value contains the word as a token.  Served by the
           backend's inverted index when it has one (System D), by an
           extent or tree scan otherwise — the isolation study of the
           paper's Section 6.9. *)
        let tag = Symbol.intern (string_arg ctx tag_e) and word = string_arg ctx word_e in
        match S.keyword_search ctx.c.store ~tag ~word with
        | Some nodes -> List.map (fun n -> N n) nodes
        | None ->
            let extent =
              match tag_array ctx.c tag with
              | Some a -> Array.to_list (Array.map (fun n -> N n) a)
              | None -> collect_descendants_named ctx D tag
            in
            let needle = String.lowercase_ascii word in
            List.filter (fun it -> contains_token (string_value_of ctx it) needle) extent)
    | "position", [] -> [ Num (float_of_int ctx.cpos) ]
    | "last", [] -> [ Num (float_of_int ctx.csize) ]
    | "name", [ e ] -> (
        match eval ctx e with
        | [] -> [ Str "" ]
        | it :: _ -> [ Str (item_name ctx it) ])
    | "name", [] -> (
        match ctx.citem with
        | Some it -> [ Str (item_name ctx it) ]
        | None -> err "name() with no context item")
    | "id", [ e ] -> (
        let idval = string_arg ctx e in
        match S.id_lookup ctx.c.store idval with
        | Some (Some n) -> [ N n ]
        | Some None -> []
        | None ->
            (* no index: scan *)
            let rec scan acc it =
              let acc =
                if
                  item_kind ctx it = `Element
                  && (match it with
                     | N n -> S.attribute ctx.c.store n "id" = Some idval
                     | _ -> false)
                then it :: acc
                else acc
              in
              List.fold_left scan acc
                (List.filter (fun k -> item_kind ctx k = `Element) (child_items ctx it))
            in
            List.rev (scan [] (N (S.root ctx.c.store))))
    | _ -> (
        match Hashtbl.find_opt ctx.c.funcs f with
        | Some (params, body) ->
            if List.length params <> List.length args then
              err "function %s expects %d arguments" f (List.length params);
            let bindings = List.map2 (fun p a -> (p, eval ctx a)) params args in
            eval { ctx with vars = bindings @ ctx.vars } body
        | None -> err "unknown function %s/%d" f (List.length args))

  and string_arg ctx e =
    match atomize ctx (eval ctx e) with
    | [] -> ""
    | it :: _ -> string_value_of ctx it

  and number_arg ctx e =
    match atomize ctx (eval ctx e) with
    | [] -> Float.nan
    | it :: _ -> Option.value ~default:Float.nan (to_number_opt it)

  and fold_minmax ctx e which =
    match atomize ctx (eval ctx e) with
    | [] -> []
    | v -> (
        let nums = List.filter_map to_number_opt v in
        match (nums, which) with
        | _ when List.length nums = List.length v ->
            let pick : float -> float -> float =
              match which with `Min -> Float.min | `Max -> Float.max
            in
            [ Num (List.fold_left pick (List.hd nums) (List.tl nums)) ]
        | _ ->
            let strs = List.map (string_value_of ctx) v in
            let pick a b =
              match which with
              | `Min -> if String.compare a b <= 0 then a else b
              | `Max -> if String.compare a b >= 0 then a else b
            in
            [ Str (List.fold_left pick (List.hd strs) (List.tl strs)) ])

  and contains_token s needle =
    (* token = maximal alphanumeric run, compared lowercase *)
    let n = String.length s and ln = String.length needle in
    let is_alnum c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    in
    let rec scan i =
      if i >= n then false
      else if not (is_alnum s.[i]) then scan (i + 1)
      else begin
        let j = ref i in
        while !j < n && is_alnum s.[!j] do
          incr j
        done;
        if !j - i = ln && String.lowercase_ascii (String.sub s i ln) = needle then true
        else scan !j
      end
    in
    ln > 0 && scan 0

  and contains_substring s sub =
    let ls = String.length s and lx = String.length sub in
    if lx = 0 then true
    else if lx > ls then false
    else
      let rec at i = if i + lx > ls then false else String.sub s i lx = sub || at (i + 1) in
      at 0

  (* --- entry points ------------------------------------------------------ *)

  let run c =
    let ctx = { c; vars = []; citem = None; cpos = 0; csize = 0 } in
    eval ctx c.query.Ast.main

  let eval_string ?optimize store src =
    run (compile ?optimize store (Parser.parse_query src))

  let string_of_item store it =
    let c =
      { store; query = { Ast.functions = []; main = Ast.Root }; funcs = Hashtbl.create 1;
        tag_arrays = Hashtbl.create 1; optimize = false; join_tables = Hashtbl.create 1;
        ineq_tables = Hashtbl.create 1; vec = None; vec_plans = Hashtbl.create 1 }
    in
    string_value_of { c; vars = []; citem = None; cpos = 0; csize = 0 } it

  let result_to_dom store v =
    let c =
      { store; query = { Ast.functions = []; main = Ast.Root }; funcs = Hashtbl.create 1;
        tag_arrays = Hashtbl.create 1; optimize = false; join_tables = Hashtbl.create 1;
        ineq_tables = Hashtbl.create 1; vec = None; vec_plans = Hashtbl.create 1 }
    in
    let ctx = { c; vars = []; citem = None; cpos = 0; csize = 0 } in
    List.map (item_to_dom ctx) v

  let result_size v = List.length v
end
