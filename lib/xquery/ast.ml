(** Abstract syntax of the XQuery subset the benchmark queries need.

    The paper formulates Q1-Q20 in the February-2001 XQuery draft; this AST
    covers that fragment: FLWOR, quantified expressions, path expressions
    with abbreviated axes, direct element constructors with enclosed
    expressions, node-order comparison, and function declarations. *)

type axis =
  | Child
  | Descendant  (** desugared [//] *)
  | Attribute
  | Parent
  | Self

type test =
  | Name of Xmark_xml.Symbol.t  (** interned: a name test is an int compare *)
  | Star
  | Text_test  (** [text()] *)
  | Any_kind  (** [node()] *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type quant = Some_ | Every

type expr =
  | Number of float
  | Literal of string
  | Var of string
  | Sequence of expr list  (** comma operator; [Sequence []] is [()] *)
  | Root  (** [document(...)] or a leading [/] *)
  | Context  (** the context item; origin of name-initial relative paths *)
  | Path of expr * step list
  | Filter of expr * expr list  (** primary expression with predicates *)
  | Flwor of flwor
  | Quantified of quant * (string * expr) list * expr
  | If of expr * expr * expr
  | Or of expr * expr
  | And of expr * expr
  | Compare of cmp * expr * expr
  | Arith of arith * expr * expr
  | Neg of expr
  | Call of string * expr list
  | Elem_ctor of Xmark_xml.Symbol.t * (string * attr_value) list * content list
  | Node_before of expr * expr  (** [<<] *)
  | Node_after of expr * expr  (** [>>] *)

and step = { axis : axis; test : test; preds : expr list }

and flwor = {
  clauses : clause list;
  where : expr option;
  order : order_spec list;
  ret : expr;
}

and clause = For of string * expr | Let of string * expr

and order_spec = { key : expr; descending : bool }

and attr_value = attr_piece list

and attr_piece = A_text of string | A_expr of expr

and content = C_text of string | C_expr of expr

type func = { fname : string; params : string list; body : expr }

type query = { functions : func list; main : expr }

(* A compact printer, mainly for parser tests and error messages. *)
let rec pp_expr fmt e =
  let open Format in
  match e with
  | Number f -> fprintf fmt "%g" f
  | Literal s -> fprintf fmt "%S" s
  | Var v -> fprintf fmt "$%s" v
  | Sequence es ->
      fprintf fmt "(%a)" (pp_print_list ~pp_sep:(fun f () -> pp_print_string f ", ") pp_expr) es
  | Root -> pp_print_string fmt "document(.)"
  | Context -> pp_print_string fmt "."
  | Path (origin, steps) ->
      pp_expr fmt origin;
      List.iter (pp_step fmt) steps
  | Filter (e, preds) ->
      pp_expr fmt e;
      List.iter (fun p -> fprintf fmt "[%a]" pp_expr p) preds
  | Flwor f ->
      List.iter
        (function
          | For (v, e) -> fprintf fmt "for $%s in %a " v pp_expr e
          | Let (v, e) -> fprintf fmt "let $%s := %a " v pp_expr e)
        f.clauses;
      Option.iter (fun w -> fprintf fmt "where %a " pp_expr w) f.where;
      if f.order <> [] then begin
        fprintf fmt "order by ";
        List.iteri
          (fun i { key; descending } ->
            if i > 0 then fprintf fmt ", ";
            fprintf fmt "%a%s" pp_expr key (if descending then " descending" else ""))
          f.order;
        fprintf fmt " "
      end;
      fprintf fmt "return %a" pp_expr f.ret
  | Quantified (q, binds, sat) ->
      fprintf fmt "%s " (match q with Some_ -> "some" | Every -> "every");
      List.iteri
        (fun i (v, e) ->
          if i > 0 then fprintf fmt ", ";
          fprintf fmt "$%s in %a" v pp_expr e)
        binds;
      fprintf fmt " satisfies %a" pp_expr sat
  | If (c, t, e) -> fprintf fmt "if (%a) then %a else %a" pp_expr c pp_expr t pp_expr e
  | Or (a, b) -> fprintf fmt "(%a or %a)" pp_expr a pp_expr b
  | And (a, b) -> fprintf fmt "(%a and %a)" pp_expr a pp_expr b
  | Compare (op, a, b) ->
      let s = match op with Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" in
      fprintf fmt "(%a %s %a)" pp_expr a s pp_expr b
  | Arith (op, a, b) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Mod -> "mod" in
      fprintf fmt "(%a %s %a)" pp_expr a s pp_expr b
  | Neg a -> fprintf fmt "(-%a)" pp_expr a
  | Call (f, args) ->
      fprintf fmt "%s(%a)" f
        (pp_print_list ~pp_sep:(fun f () -> pp_print_string f ", ") pp_expr)
        args
  | Elem_ctor (tag, attrs, content) ->
      let tag = Xmark_xml.Symbol.to_string tag in
      fprintf fmt "<%s" tag;
      List.iter (fun (k, _) -> fprintf fmt " %s=\"...\"" k) attrs;
      fprintf fmt ">";
      List.iter
        (function
          | C_text s -> pp_print_string fmt s
          | C_expr e -> fprintf fmt "{%a}" pp_expr e)
        content;
      fprintf fmt "</%s>" tag
  | Node_before (a, b) -> fprintf fmt "(%a << %a)" pp_expr a pp_expr b
  | Node_after (a, b) -> fprintf fmt "(%a >> %a)" pp_expr a pp_expr b

and pp_step fmt { axis; test; preds } =
  let open Format in
  (match axis with
  | Child -> fprintf fmt "/"
  | Descendant -> fprintf fmt "//"
  | Attribute -> fprintf fmt "/@"
  | Parent -> fprintf fmt "/.."
  | Self -> fprintf fmt "/.");
  (match test with
  | Name n -> (
      match axis with
      | Parent | Self -> ()
      | _ -> pp_print_string fmt (Xmark_xml.Symbol.to_string n))
  | Star -> pp_print_string fmt "*"
  | Text_test -> pp_print_string fmt "text()"
  | Any_kind -> pp_print_string fmt "node()");
  List.iter (fun p -> fprintf fmt "[%a]" pp_expr p) preds

let expr_to_string e = Format.asprintf "%a" pp_expr e
