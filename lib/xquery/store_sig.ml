(** Interface between the query evaluator and a storage backend.

    Every system under test (Systems A through G of the paper's Section 7)
    implements this signature; the evaluator is a functor over it, so the
    same query code runs against every physical mapping and the measured
    differences are attributable to the mapping — which is the point of the
    benchmark.

    Navigation operations are mandatory.  The [option]-returning
    accelerators model the architecture-specific access paths the paper
    discusses: an ID index (Q1's "table scan or index lookup"), tag/path
    extents backed by a structural summary ("System D keeps a detailed
    structural summary of the database and can exploit it to optimize
    traversal-intensive queries"), and subtree intervals that let
    descendant steps avoid full traversals.  A backend returns [None] when
    it has no such access path, and the evaluator falls back to plain
    navigation.

    Observability convention: implementations record what they did into
    {!Xmark_stats} — [nodes_scanned] for every node materialized or
    touched by navigation, [index_lookups]/[index_hits] for each probe of
    an ID / extent / keyword index, and [summary_consultations] when a
    structural summary or optimizer statistic answers a question without
    touching data.  Counters are observation-only: enabling them must
    never change results (see [test_stats_differential]). *)

module type S = sig
  type t
  (** A loaded database instance. *)

  type node
  (** Handle to a stored element or text node. *)

  val root : t -> node
  (** The document element. *)

  val kind : t -> node -> [ `Element | `Text ]

  val name : t -> node -> Xmark_xml.Symbol.t
  (** Interned tag of an element; {!Xmark_xml.Symbol.empty} for text
      nodes.  Resolve with [Symbol.to_string] only at output
      boundaries — name tests stay in symbol space. *)

  val text : t -> node -> string
  (** Character data of a text node; [""] for elements. *)

  val children : t -> node -> node list
  (** Children in document order; [\[\]] for text nodes. *)

  val parent : t -> node -> node option

  val attributes : t -> node -> (string * string) list

  val attribute : t -> node -> string -> string option

  val order : t -> node -> int
  (** Document-order rank; unique per node within a store. *)

  val string_value : t -> node -> string
  (** Concatenated descendant text. *)

  (* --- optional accelerators ------------------------------------------ *)

  val id_lookup : t -> string -> node option option
  (** [Some (Some n)]: the element whose [id] attribute is the argument;
      [Some None]: index present, no such id; [None]: no ID index. *)

  val tag_nodes : t -> Xmark_xml.Symbol.t -> node list option
  (** All elements with the given tag, in document order. *)

  val tag_count : t -> Xmark_xml.Symbol.t -> int option

  val subtree_interval : t -> node -> (int * int) option
  (** [(lo, hi)] such that node [d] is a descendant-or-self of the argument
      iff [lo <= order d < hi]. *)

  val keyword_search : t -> tag:Xmark_xml.Symbol.t -> word:string -> node list option
  (** Elements with the given tag whose string value contains [word] as a
      token — an inverted-index access path for the full-text query Q14. *)

  val vec : t -> (Xmark_relational.Vec_ops.adapter * (int -> node)) option
  (** Vectorized-execution capability: an id-algebra view of the store
      plus the decoder from adapter ids back to nodes.  Only meaningful
      for backends whose node handles are pre-order integers with
      document order equal to id order; others return [None] and the
      evaluator stays on the scalar path. *)

  (* --- statistics ------------------------------------------------------ *)

  val size_bytes : t -> int
  (** Approximate size of the loaded database (Table 1's "Size" column). *)

  val node_count : t -> int

  val description : t -> string
  (** One-line architecture description for reports. *)
end
