(* Cooperative cancellation for long-running evaluations.

   The evaluator has no natural yield points — a quadratic Q11 at factor
   0.1 runs for seconds inside pure OCaml loops — so a server cannot
   abort it from outside.  Instead the hot iteration sites in [Eval]
   call {!poll}, which consults a per-domain check installed by whoever
   started the evaluation (the query service arms it with a deadline).
   When no check is installed the poll is a domain-local read and a
   branch: benchmark numbers are unaffected.

   The check runs on the evaluating domain and signals by raising
   {!Cancelled}; the evaluator's own state is simply abandoned
   (compiled-plan caches tolerate this — see Plan_cache). *)

exception Cancelled of string

let key : (unit -> unit) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let install check = Domain.DLS.get key := Some check

let clear () = Domain.DLS.get key := None

let poll () =
  match !(Domain.DLS.get key) with None -> () | Some check -> check ()

let with_check check f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := Some check;
  Fun.protect ~finally:(fun () -> slot := saved) f
