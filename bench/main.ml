(* Benchmark entry point.

   Running [dune exec bench/main.exe] regenerates every table and figure of
   the paper's evaluation (Section 7) via Xmark_core.Experiments, then runs
   a Bechamel micro-benchmark suite with one Test.make per exhibit — a
   statistically sampled kernel of the workload behind each table/figure.

   Environment:
     XMARK_FACTOR   scaling factor for the table experiments (default 0.01)
     XMARK_SKIP_MICRO   set to skip the bechamel suite. *)

open Bechamel
open Toolkit

module Runner = Xmark_core.Runner
module Experiments = Xmark_core.Experiments

let factor = Experiments.default_factor

(* Kernels reused by the micro-benchmarks; documents and stores are built
   once, outside the timed region. *)
let micro_factor = 0.002

let doc = lazy (Xmark_xmlgen.Generator.to_string ~factor:micro_factor ())

let store_of sys =
  lazy (Runner.load ~source:(`Text (Lazy.force doc)) sys).Runner.store

let store_a = store_of Runner.A
let store_b = store_of Runner.B
let store_c = store_of Runner.C
let store_d = store_of Runner.D

let bench_query sys store q =
  Test.make
    ~name:(Printf.sprintf "Q%d-%s" q (match sys with
      | Runner.A -> "A" | Runner.B -> "B" | Runner.C -> "C" | Runner.D -> "D"
      | Runner.E -> "E" | Runner.F -> "F" | Runner.G -> "G"))
    (Staged.stage (fun () -> ignore (Runner.run (Lazy.force store) q)))

let micro_tests () =
  Test.make_grouped ~name:"xmark"
    [
      (* Figure 3 / genperf kernel: document generation *)
      Test.make ~name:"fig3-generate"
        (Staged.stage (fun () ->
             ignore (Xmark_xmlgen.Generator.measure ~factor:micro_factor ())));
      (* Table 1 kernel: SAX scan and a bulkload *)
      Test.make ~name:"table1-sax-scan"
        (Staged.stage (fun () ->
             ignore (Xmark_xml.Sax.scan (Xmark_xml.Sax.of_string (Lazy.force doc)))));
      Test.make ~name:"table1-bulkload-D"
        (Staged.stage (fun () ->
             ignore (Xmark_store.Backend_mainmem.of_string ~level:`Full (Lazy.force doc))));
      (* Table 2 kernel: query compilation (parsing; metadata resolution is
         measured in the table itself via catalog counters) *)
      Test.make ~name:"table2-parse-Q8"
        (Staged.stage (fun () ->
             ignore (Xmark_xquery.Parser.parse_query (Xmark_core.Queries.text 8))));
      bench_query Runner.B store_b 1;
      (* Table 3 kernels: one representative query per architecture family *)
      bench_query Runner.A store_a 1;
      bench_query Runner.D store_d 1;
      bench_query Runner.A store_a 2;
      bench_query Runner.C store_c 2;
      bench_query Runner.D store_d 6;
      bench_query Runner.A store_a 6;
      bench_query Runner.C store_c 8;
      bench_query Runner.D store_d 8;
      (* substrate kernels: ordered index, pipelined join, path compilers *)
      Test.make ~name:"btree-range-scan"
        (Staged.stage
           (let tree = Xmark_relational.Btree.create () in
            let () =
              for i = 0 to 9999 do
                Xmark_relational.Btree.insert tree (Xmark_relational.Value.Num (float_of_int (i mod 500))) i
              done
            in
            fun () ->
              ignore
                (Xmark_relational.Btree.range
                   ~lower:(Xmark_relational.Value.Num 100.0, true)
                   ~upper:(Xmark_relational.Value.Num 110.0, false)
                   tree)));
      Test.make ~name:"pathcompile-A-person"
        (Staged.stage
           (let store =
              Xmark_store.Backend_heap.load_string (Lazy.force doc)
            in
            let steps =
              match Xmark_xquery.Parser.parse_expr "/site/people/person" with
              | Xmark_xquery.Ast.Path (Xmark_xquery.Ast.Root, steps) -> steps
              | _ -> assert false
            in
            fun () ->
              ignore
                (Xmark_store.Path_compiler.execute
                   (Xmark_store.Path_compiler.compile store steps))));
      (* Figure 4 kernel: the embedded processor's per-query overhead *)
      Test.make ~name:"fig4-G-Q1"
        (Staged.stage
           (let g = (Runner.load ~source:(`Text (Lazy.force doc)) Runner.G).Runner.store in
            fun () -> ignore (Runner.run g 1)));
    ]

let run_micro () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "== Bechamel micro-benchmarks (ns per run, OLS estimate) ==\n\n";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) ->
          let r2 =
            match Analyze.OLS.r_square v with Some r -> Printf.sprintf "%.4f" r | None -> "-"
          in
          Printf.printf "%-28s %14.0f ns/run   (r² %s)\n" name est r2
      | Some [] | None -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare rows);
  Printf.printf "\n"

let () =
  Printf.printf "XMark benchmark harness — factor %g (override with XMARK_FACTOR)\n\n" factor;
  Experiments.run_all ~factor ();
  if Sys.getenv_opt "XMARK_SKIP_MICRO" = None then run_micro ()
