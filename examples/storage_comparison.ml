(* Storage-architecture comparison: the "customers can be assisted in
   choosing between products" use case of the paper's introduction.

     dune exec examples/storage_comparison.exe

   Loads the same document into every mass-storage backend (the paper's
   Systems A-F), prints database sizes and bulkload times (Table 1's
   method), then times a lookup query, a join query and a traversal query
   on each — showing how the physical XML mapping determines which query
   shapes a system is good at (the paper's central conclusion). *)

module Runner = Xmark_core.Runner
module Timing = Xmark_core.Timing

let () =
  let factor = 0.01 in
  let doc = Xmark_xmlgen.Generator.to_string ~factor () in
  Printf.printf "Document: %.2f MB at factor %g\n\n"
    (float_of_int (String.length doc) /. 1048576.0)
    factor;

  Printf.printf "%-9s %10s %12s   %s\n" "System" "Size(MB)" "Load(ms)" "Architecture";
  Printf.printf "%s\n" (String.make 95 '-');
  let stores =
    List.map
      (fun sys ->
        let session = Runner.load ~source:(`Text doc) sys in
        let store = session.Runner.store and stats = session.Runner.load_stats in
        Printf.printf "%-9s %10.2f %12.1f   %s\n" (Runner.system_name sys)
          (float_of_int stats.Runner.db_bytes /. 1048576.0)
          stats.Runner.load.Timing.wall_ms
          (Runner.system_description sys);
        (sys, store))
      Runner.mass_storage
  in

  let probe title q =
    Printf.printf "\n%s (benchmark Q%d)\n" title q;
    Printf.printf "%-9s %12s %12s %8s\n" "System" "compile(ms)" "execute(ms)" "items";
    List.iter
      (fun (sys, store) ->
        let o = Runner.run store q in
        Printf.printf "%-9s %12.2f %12.2f %8d\n" (Runner.system_name sys)
          o.Runner.compile.Timing.wall_ms o.Runner.execute.Timing.wall_ms o.Runner.items)
      stores
  in
  probe "Point lookup by ID" 1;
  probe "Ordered access to the first bid" 2;
  probe "Reference-chasing join" 8;
  probe "Regular path expression over the whole tree" 7;

  Printf.printf
    "\nNote how the DTD-mapped System C wins ordered access, the\n\
     structural-summary System D wins path expressions, and every system\n\
     returns the same answers — \"no mapping was able to outperform the\n\
     others across the board\" (paper, Section 8).\n"
