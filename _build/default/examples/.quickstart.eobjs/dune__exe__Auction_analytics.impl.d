examples/auction_analytics.ml: Hashtbl List Option Printf Xmark_core Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
