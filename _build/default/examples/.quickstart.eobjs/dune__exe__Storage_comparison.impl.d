examples/storage_comparison.ml: List Printf String Xmark_core Xmark_xmlgen
