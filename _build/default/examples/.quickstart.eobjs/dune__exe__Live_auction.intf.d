examples/live_auction.mli:
