examples/live_auction.ml: List Printf Xmark_core Xmark_store Xmark_xmlgen Xmark_xquery
