examples/storage_comparison.mli:
