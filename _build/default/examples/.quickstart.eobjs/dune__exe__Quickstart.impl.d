examples/quickstart.ml: List Printf String Xmark_core Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
