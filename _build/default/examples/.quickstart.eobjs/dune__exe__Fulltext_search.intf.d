examples/fulltext_search.mli:
