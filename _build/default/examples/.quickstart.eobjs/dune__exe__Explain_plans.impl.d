examples/explain_plans.ml: List Printf Unix Xmark_store Xmark_xmlgen Xmark_xquery
