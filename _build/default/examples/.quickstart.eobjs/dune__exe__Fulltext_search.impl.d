examples/fulltext_search.ml: Array List Option Printf Sys Unix Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
