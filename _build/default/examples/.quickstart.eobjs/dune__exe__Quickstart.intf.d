examples/quickstart.mli:
