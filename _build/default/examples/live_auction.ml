(* A live auction day: updates interleaved with queries.

     dune exec examples/live_auction.exe

   The paper defers update specifications to future work (Section 8); this
   example exercises the update extension: new users register, bids come
   in, auctions close — and the analytical queries keep answering over the
   changing database. *)

module MM = Xmark_store.Backend_mainmem
module Eval = Xmark_xquery.Eval.Make (MM)
module Updates = Xmark_store.Updates

let query session q = Eval.eval_string (Updates.store session) q

let scalar session q =
  match query session q with
  | [ it ] -> Eval.string_of_item (Updates.store session) it
  | _ -> "?"

let report session moment =
  Printf.printf "%-22s open %s  closed %s  users %s  turnover %s\n" moment
    (scalar session "count(/site/open_auctions/open_auction)")
    (scalar session "count(/site/closed_auctions/closed_auction)")
    (scalar session "count(/site/people/person)")
    (scalar session "sum(/site/closed_auctions/closed_auction/price)")

let () =
  let session = Updates.of_string (Xmark_xmlgen.Generator.to_string ~factor:0.005 ()) in
  report session "start of day:";

  (* morning: two new users sign up *)
  let alice = Updates.register_person session ~name:"Alice Rivest" ~email:"mailto:alice@example.org" in
  let bob = Updates.register_person session ~name:"Bob Shamir" ~email:"mailto:bob@example.org" in
  Printf.printf "  registered %s and %s\n" alice bob;

  (* they start a bidding war on the cheapest running auction *)
  let target =
    match query session
            {|(for $a in /site/open_auctions/open_auction
               order by number($a/initial) ascending
               return $a/@id)[1]|}
    with
    | [ Eval.A a ] -> a.Eval.avalue
    | _ -> failwith "no auctions"
  in
  Printf.printf "  bidding war on %s:\n" target;
  List.iteri
    (fun i (person, increase) ->
      Updates.place_bid session ~auction:target ~person ~increase
        ~date:"06/07/2026"
        ~time:(Printf.sprintf "%02d:00:00" (9 + i));
      Printf.printf "    %s raises by %.2f -> current %s\n" person increase
        (scalar session
           (Printf.sprintf {|/site/open_auctions/open_auction[@id = "%s"]/current/text()|} target)))
    [ (alice, 12.0); (bob, 18.0); (alice, 25.5) ];

  report session "midday:";

  (* afternoon: the auction closes; Alice (last bidder) wins *)
  Updates.close_auction session ~auction:target ~date:"06/07/2026";
  Printf.printf "  %s closed; buyer %s paid %s\n" target
    (scalar session "/site/closed_auctions/closed_auction[last()]/buyer/@person")
    (scalar session "/site/closed_auctions/closed_auction[last()]/price/text()");

  report session "end of day:";

  (* the analytical workload still runs over the mutated database *)
  let q8 = Xmark_core.Queries.get 8 in
  let buyers = query session q8.Xmark_core.Queries.text in
  Printf.printf "\nQ8 over the updated database: %d persons listed; Alice bought %s item(s)\n"
    (List.length buyers)
    (scalar session
       (Printf.sprintf
          {|count(for $t in /site/closed_auctions/closed_auction
                  where $t/buyer/@person = "%s" return $t)|}
          alice))
