(* Full-text search over item descriptions — the paper's Q14 scenario
   ("the interaction [of full-text scanning] with structural mark-up is
   essential as the concepts are considered orthogonal").

     dune exec examples/fulltext_search.exe -- gold silver

   Looks up each word given on the command line (default: "gold", Q14's
   needle) in the descriptions of auction items, combining structure
   (only /site//item/description) with content (contains). *)

module MM = Xmark_store.Backend_mainmem
module Eval = Xmark_xquery.Eval.Make (MM)
module Dom = Xmark_xml.Dom

let () =
  let words =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "gold" ] | _ :: ws -> ws
  in
  let store = MM.of_string ~level:`Full (Xmark_xmlgen.Generator.to_string ~factor:0.02 ()) in

  List.iter
    (fun word ->
      (* structural + content predicate, exactly Q14's shape *)
      let query =
        Printf.sprintf
          {|for $i in /site//item
            where contains(string(exactly-one($i/description)), "%s")
            return <hit region="{name($i/..)}" name="{$i/name/text()}"/>|}
          word
      in
      let t0 = Unix.gettimeofday () in
      let hits = Eval.eval_string store query in
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Printf.printf "%-12s %3d items (%.1f ms)\n" word (List.length hits) ms;
      List.iteri
        (fun i item ->
          if i < 5 then
            match item with
            | Eval.C node ->
                Printf.printf "    [%s] %s\n"
                  (Option.value ~default:"?" (Dom.attr node "region"))
                  (Option.value ~default:"?" (Dom.attr node "name"))
            | _ -> ())
        hits;
      if List.length hits > 5 then Printf.printf "    ... and %d more\n" (List.length hits - 5);
      print_newline ())
    words;

  (* A keyword can also be combined with the inline markup structure, the
     way Q15/Q16 mix path depth and content: *)
  let emphasized =
    Eval.eval_string store "count(/site//item/description//emph/keyword)"
  in
  Printf.printf "Emphasized keyword phrases in item descriptions: %s\n"
    (match emphasized with [ it ] -> Eval.string_of_item store it | _ -> "?")
