(* What does a path expression cost on a relational XML store?

     dune exec examples/explain_plans.exe

   The paper's Section 2: on relational back-ends, path expressions "tend
   to require expensive join and aggregation operations".  This example
   compiles benchmark-style paths for the two relational mappings and
   prints the resulting algebra: on the edge model (System A) every step
   is a self-join of the one node relation; on the fragmenting mapping
   (System B) precise steps touch one small relation each, but descendant
   steps must visit the whole catalog. *)

module HA = Xmark_store.Backend_heap
module SB = Xmark_store.Backend_shredded
module PA = Xmark_store.Path_compiler
module PB = Xmark_store.Path_compiler_b
module Ast = Xmark_xquery.Ast
module Parser = Xmark_xquery.Parser

let paths =
  [
    "/site/people/person";
    {|/site/people/person[@id = "person0"]|};
    "/site//keyword";
    "/site/open_auctions/open_auction/bidder/increase";
  ]

let steps_of src =
  match Parser.parse_expr src with
  | Ast.Path (Ast.Root, steps) -> steps
  | _ -> failwith "not an absolute path"

let () =
  let doc = Xmark_xmlgen.Generator.to_string ~factor:0.005 () in
  let heap = HA.load_string doc in
  let shredded = SB.load_string doc in
  List.iter
    (fun path ->
      Printf.printf "PATH %s\n" path;
      let pa = PA.compile heap (steps_of path) in
      let pb = PB.compile shredded (steps_of path) in
      Printf.printf "  System A (edge model, %d joins):\n    %s\n" (PA.join_count pa)
        (PA.explain pa);
      Printf.printf "  System B (fragmented, %d relations touched):\n    %s\n"
        (PB.relations_touched pb) (PB.explain pb);
      let t0 = Unix.gettimeofday () in
      let ra = PA.execute pa in
      let t1 = Unix.gettimeofday () in
      let rb = PB.execute pb in
      let t2 = Unix.gettimeofday () in
      Printf.printf "  results: %d nodes (A %.2f ms, B %.2f ms, identical: %b)\n\n"
        (List.length ra)
        ((t1 -. t0) *. 1000.)
        ((t2 -. t1) *. 1000.)
        (ra = rb))
    paths
