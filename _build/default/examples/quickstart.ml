(* Quickstart: generate a benchmark document, load it, run a query.

     dune exec examples/quickstart.exe

   Three steps: (1) xmlgen produces the auction-site document at a chosen
   scaling factor; (2) a storage backend loads it (here System D, the
   main-memory store with a structural summary); (3) the XQuery engine
   evaluates queries against it. *)

module MM = Xmark_store.Backend_mainmem
module Eval = Xmark_xquery.Eval.Make (MM)

let () =
  (* 1. Generate: factor 0.01 is roughly a 1 MB document. *)
  let document = Xmark_xmlgen.Generator.to_string ~factor:0.01 () in
  Printf.printf "generated %d bytes of auction data\n" (String.length document);

  (* 2. Load into a store. *)
  let store = MM.of_string ~level:`Full document in
  Printf.printf "loaded: %s\n\n" (MM.description store);

  (* 3. Query.  Any XQuery in the benchmark's dialect works: *)
  let show label query =
    let result = Eval.eval_string store query in
    let rendered =
      Xmark_xml.Serialize.fragment_to_string (Eval.result_to_dom store result)
    in
    Printf.printf "%s\n  %s\n\n" label
      (if String.length rendered > 200 then String.sub rendered 0 200 ^ " ..." else rendered)
  in
  show "How many items are on auction?" "count(/site//item)";
  show "Who is person0? (benchmark query Q1)"
    {|for $b in document("auction.xml")/site/people/person[@id = "person0"]
      return $b/name/text()|};
  show "Cheapest three open auctions:"
    {|(for $a in /site/open_auctions/open_auction
       let $i := $a/initial
       order by number($i) ascending
       return <auction id="{$a/@id}" initial="{$i/text()}"/>)[position() <= 3]|};

  (* The twenty official benchmark queries ship with the library: *)
  let q8 = Xmark_core.Queries.get 8 in
  Printf.printf "Benchmark Q8 (%s): %s\n" q8.Xmark_core.Queries.concept
    q8.Xmark_core.Queries.description;
  let result = Eval.eval_string store q8.Xmark_core.Queries.text in
  Printf.printf "  -> %d result items\n" (List.length result)
