(* Auction-site analytics: the e-commerce scenario that motivates the
   benchmark (paper, Section 1 — "electronic commerce sites and content
   providers ... interested in deploying advanced data management
   systems").

     dune exec examples/auction_analytics.exe

   Answers the questions a site operator would ask, mixing ad-hoc XQuery
   with OCaml post-processing of typed results. *)

module MM = Xmark_store.Backend_mainmem
module Eval = Xmark_xquery.Eval.Make (MM)

let strings store v = List.map (Eval.string_of_item store) v

let () =
  let factor = 0.02 in
  let store = MM.of_string ~level:`Full (Xmark_xmlgen.Generator.to_string ~factor ()) in
  let q src = Eval.eval_string store src in

  (* -- marketplace overview ------------------------------------------------ *)
  let count src = match q src with [ it ] -> Eval.string_of_item store it | _ -> "?" in
  Printf.printf "Marketplace at factor %g:\n" factor;
  Printf.printf "  items listed      %s\n" (count "count(/site//item)");
  Printf.printf "  running auctions  %s\n" (count "count(/site/open_auctions/open_auction)");
  Printf.printf "  completed sales   %s\n" (count "count(/site/closed_auctions/closed_auction)");
  Printf.printf "  registered users  %s\n\n" (count "count(/site/people/person)");

  (* -- revenue ---------------------------------------------------------------- *)
  let total_sales = count "sum(/site/closed_auctions/closed_auction/price)" in
  let avg_price = count "avg(/site/closed_auctions/closed_auction/price)" in
  Printf.printf "Sales: total %s, average price %s\n\n" total_sales avg_price;

  (* -- most active bidders ------------------------------------------------------ *)
  Printf.printf "Most active bidders:\n";
  let bidders =
    strings store (q "/site/open_auctions/open_auction/bidder/personref/@person")
  in
  let tally = Hashtbl.create 64 in
  List.iter
    (fun p -> Hashtbl.replace tally p (1 + Option.value ~default:0 (Hashtbl.find_opt tally p)))
    bidders;
  let ranked =
    Hashtbl.fold (fun p n acc -> (n, p) :: acc) tally []
    |> List.sort (fun a b -> compare b a)
  in
  List.iteri
    (fun i (n, p) ->
      if i < 5 then
        let name =
          match q (Printf.sprintf {|id("%s")/name/text()|} p) with
          | [ it ] -> Eval.string_of_item store it
          | _ -> p
        in
        Printf.printf "  %d bids  %-10s %s\n" n p name)
    ranked;
  print_newline ();

  (* -- where is inventory listed? ----------------------------------------------- *)
  Printf.printf "Items per region:\n";
  List.iter
    (fun region ->
      Printf.printf "  %-10s %s\n" region
        (count (Printf.sprintf "count(/site/regions/%s/item)" region)))
    [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ];
  print_newline ();

  (* -- customer segmentation (the paper's Q20) ------------------------------------ *)
  Printf.printf "Customer segmentation by income (benchmark Q20):\n";
  (match q (Xmark_core.Queries.text 20) with
  | [ Eval.C result ] ->
      List.iter
        (fun child ->
          Printf.printf "  %-10s %s\n" (Xmark_xml.Dom.name child)
            (Xmark_xml.Dom.string_value child))
        (Xmark_xml.Dom.children result)
  | _ -> print_endline "  (unexpected result shape)");
  print_newline ();

  (* -- auctions that will close with a profit -------------------------------------- *)
  Printf.printf "Open auctions already above a 150%% reserve multiple: %s\n"
    (count
       {|count(for $a in /site/open_auctions/open_auction
              where $a/current > 1.5 * $a/reserve
              return $a)|});

  (* -- watchers of hot auctions ------------------------------------------------------ *)
  let watched = strings store (q "/site/people/person/watches/watch/@open_auction") in
  let watch_tally = Hashtbl.create 64 in
  List.iter
    (fun a ->
      Hashtbl.replace watch_tally a (1 + Option.value ~default:0 (Hashtbl.find_opt watch_tally a)))
    watched;
  let hottest =
    Hashtbl.fold (fun a n acc -> (n, a) :: acc) watch_tally [] |> List.sort compare |> List.rev
  in
  (match hottest with
  | (n, a) :: _ -> Printf.printf "Most watched auction: %s (%d watchers)\n" a n
  | [] -> ())
