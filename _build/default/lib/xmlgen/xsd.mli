(** XML Schema for the benchmark document.

    The paper provides "a DTD and schema information ... to allow for more
    efficient mappings" (Section 4.4) — XML Schema activities "try to
    allay some of these challenges by making data-centric documents more
    accessible for (O)RDBMS" (Section 2).  This module renders the
    benchmark's content models ({!Content_model}) as a W3C XML Schema
    document: the second half of that provided schema information. *)

val document : unit -> Xmark_xml.Dom.node
(** The schema as an XML tree (root [xs:schema]). *)

val text : unit -> string
(** Serialized schema. *)
