(** The benchmark DTD (paper, Section 4.4: "A DTD and schema information
    are provided to allow for more efficient mappings").

    [text] is the single-document DTD with parser-controlled references
    (ID / IDREF); [text_split] is the split-files variant of Section 5
    where ID / IDREF declarations are downgraded to REQUIRED CDATA so a
    validating parser does not enforce cross-file uniqueness/existence. *)

val text : string

val text_split : string

val element_names : string list
(** All element tags the DTD declares; useful for shredding mappings. *)

val attribute_names : (string * string list) list
(** [(element, attributes)] pairs for every element with attributes. *)
