let declarations ~split =
  let idref = if split then "CDATA #REQUIRED" else "IDREF #REQUIRED" in
  let id = if split then "CDATA #REQUIRED" else "ID #REQUIRED" in
  let site_model =
    if split then
      (* a split file holds whatever sections the rotation point left in it *)
      "(regions?, categories?, catgraph?, people?, open_auctions?, closed_auctions?)"
    else "(regions, categories, catgraph, people, open_auctions, closed_auctions)"
  in
  let regions_model =
    if split then "(africa?, asia?, australia?, europe?, namerica?, samerica?)"
    else "(africa, asia, australia, europe, namerica, samerica)"
  in
  [
    "<!ELEMENT site " ^ site_model ^ ">";
    "<!ELEMENT categories (category+)>";
    "<!ELEMENT category (name, description)>";
    "<!ATTLIST category id " ^ id ^ ">";
    "<!ELEMENT name (#PCDATA)>";
    "<!ELEMENT description (text | parlist)>";
    "<!ELEMENT text (#PCDATA | bold | keyword | emph)*>";
    "<!ELEMENT bold (#PCDATA | bold | keyword | emph)*>";
    "<!ELEMENT keyword (#PCDATA | bold | keyword | emph)*>";
    "<!ELEMENT emph (#PCDATA | bold | keyword | emph)*>";
    "<!ELEMENT parlist (listitem)*>";
    "<!ELEMENT listitem (text | parlist)*>";
    "<!ELEMENT catgraph (edge*)>";
    "<!ELEMENT edge EMPTY>";
    "<!ATTLIST edge from " ^ idref ^ " to " ^ idref ^ ">";
    "<!ELEMENT regions " ^ regions_model ^ ">";
    "<!ELEMENT africa (item*)>";
    "<!ELEMENT asia (item*)>";
    "<!ELEMENT australia (item*)>";
    "<!ELEMENT europe (item*)>";
    "<!ELEMENT namerica (item*)>";
    "<!ELEMENT samerica (item*)>";
    "<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox)>";
    "<!ATTLIST item id " ^ id ^ " featured CDATA #IMPLIED>";
    "<!ELEMENT location (#PCDATA)>";
    "<!ELEMENT quantity (#PCDATA)>";
    "<!ELEMENT payment (#PCDATA)>";
    "<!ELEMENT shipping (#PCDATA)>";
    "<!ELEMENT reserve (#PCDATA)>";
    "<!ELEMENT incategory EMPTY>";
    "<!ATTLIST incategory category " ^ idref ^ ">";
    "<!ELEMENT mailbox (mail*)>";
    "<!ELEMENT mail (from, to, date, text)>";
    "<!ELEMENT from (#PCDATA)>";
    "<!ELEMENT to (#PCDATA)>";
    "<!ELEMENT date (#PCDATA)>";
    "<!ELEMENT itemref EMPTY>";
    "<!ATTLIST itemref item " ^ idref ^ ">";
    "<!ELEMENT personref EMPTY>";
    "<!ATTLIST personref person " ^ idref ^ ">";
    "<!ELEMENT people (person*)>";
    "<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>";
    "<!ATTLIST person id " ^ id ^ ">";
    "<!ELEMENT emailaddress (#PCDATA)>";
    "<!ELEMENT phone (#PCDATA)>";
    "<!ELEMENT address (street, city, country, province?, zipcode)>";
    "<!ELEMENT street (#PCDATA)>";
    "<!ELEMENT city (#PCDATA)>";
    "<!ELEMENT province (#PCDATA)>";
    "<!ELEMENT zipcode (#PCDATA)>";
    "<!ELEMENT country (#PCDATA)>";
    "<!ELEMENT homepage (#PCDATA)>";
    "<!ELEMENT creditcard (#PCDATA)>";
    "<!ELEMENT profile (interest*, education?, gender?, business, age?)>";
    "<!ATTLIST profile income CDATA #IMPLIED>";
    "<!ELEMENT interest EMPTY>";
    "<!ATTLIST interest category " ^ idref ^ ">";
    "<!ELEMENT education (#PCDATA)>";
    "<!ELEMENT gender (#PCDATA)>";
    "<!ELEMENT business (#PCDATA)>";
    "<!ELEMENT age (#PCDATA)>";
    "<!ELEMENT watches (watch*)>";
    "<!ELEMENT watch EMPTY>";
    "<!ATTLIST watch open_auction " ^ idref ^ ">";
    "<!ELEMENT open_auctions (open_auction*)>";
    "<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>";
    "<!ATTLIST open_auction id " ^ id ^ ">";
    "<!ELEMENT initial (#PCDATA)>";
    "<!ELEMENT bidder (date, time, personref, increase)>";
    "<!ELEMENT time (#PCDATA)>";
    "<!ELEMENT increase (#PCDATA)>";
    "<!ELEMENT current (#PCDATA)>";
    "<!ELEMENT privacy (#PCDATA)>";
    "<!ELEMENT seller EMPTY>";
    "<!ATTLIST seller person " ^ idref ^ ">";
    "<!ELEMENT annotation (author, description?, happiness)>";
    "<!ELEMENT author EMPTY>";
    "<!ATTLIST author person " ^ idref ^ ">";
    "<!ELEMENT happiness (#PCDATA)>";
    "<!ELEMENT type (#PCDATA)>";
    "<!ELEMENT interval (start, end)>";
    "<!ELEMENT start (#PCDATA)>";
    "<!ELEMENT end (#PCDATA)>";
    "<!ELEMENT closed_auctions (closed_auction*)>";
    "<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>";
    "<!ELEMENT buyer EMPTY>";
    "<!ATTLIST buyer person " ^ idref ^ ">";
    "<!ELEMENT price (#PCDATA)>";
  ]

let wrap decls = "<!DOCTYPE site [\n" ^ String.concat "\n" decls ^ "\n]>\n"

let text = wrap (declarations ~split:false)

let text_split = wrap (declarations ~split:true)

let element_names =
  [
    "site"; "categories"; "category"; "name"; "description"; "text"; "bold";
    "keyword"; "emph"; "parlist"; "listitem"; "catgraph"; "edge"; "regions";
    "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica"; "item";
    "location"; "quantity"; "payment"; "shipping"; "reserve"; "incategory";
    "mailbox"; "mail"; "from"; "to"; "date"; "itemref"; "personref";
    "people"; "person"; "emailaddress"; "phone"; "address"; "street";
    "city"; "province"; "zipcode"; "country"; "homepage"; "creditcard";
    "profile"; "interest"; "education"; "gender"; "business"; "age";
    "watches"; "watch"; "open_auctions"; "open_auction"; "initial";
    "bidder"; "time"; "increase"; "current"; "privacy"; "seller";
    "annotation"; "author"; "happiness"; "type"; "interval"; "start";
    "end"; "closed_auctions"; "closed_auction"; "buyer"; "price";
  ]

let attribute_names =
  [
    ("category", [ "id" ]);
    ("edge", [ "from"; "to" ]);
    ("item", [ "id"; "featured" ]);
    ("incategory", [ "category" ]);
    ("itemref", [ "item" ]);
    ("personref", [ "person" ]);
    ("person", [ "id" ]);
    ("profile", [ "income" ]);
    ("interest", [ "category" ]);
    ("watch", [ "open_auction" ]);
    ("open_auction", [ "id" ]);
    ("seller", [ "person" ]);
    ("author", [ "person" ]);
    ("buyer", [ "person" ]);
  ]
