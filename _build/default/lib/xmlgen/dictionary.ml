module Prng = Xmark_prng.Prng

(* Common English words seeding the frequent ranks of the synthetic
   vocabulary.  Q14's needle "gold" is deliberately absent here; it is
   pinned at a fixed middle rank below so its document frequency is stable
   across dictionary edits. *)
let common_words =
  [|
    "the"; "and"; "that"; "with"; "this"; "from"; "they"; "will"; "would";
    "there"; "their"; "what"; "about"; "which"; "when"; "make"; "like";
    "time"; "just"; "know"; "take"; "people"; "into"; "year"; "your";
    "good"; "some"; "could"; "them"; "other"; "than"; "then"; "look";
    "only"; "come"; "over"; "think"; "also"; "back"; "after"; "work";
    "first"; "well"; "even"; "want"; "because"; "these"; "give"; "most";
    "thing"; "find"; "here"; "many"; "life"; "world"; "still"; "hand";
    "high"; "keep"; "last"; "great"; "same"; "might"; "house"; "shall";
    "down"; "should"; "very"; "through"; "where"; "much"; "before"; "right";
    "such"; "long"; "place"; "little"; "never"; "leave"; "while"; "again";
    "night"; "away"; "every"; "heart"; "love"; "upon"; "head"; "light";
    "father"; "mother"; "water"; "under"; "against"; "master"; "honour";
    "death"; "enough"; "power"; "grace"; "fortune"; "nature"; "blood";
    "heaven"; "friend"; "sweet"; "noble"; "queen"; "king"; "duke"; "lord";
    "lady"; "fair"; "true"; "poor"; "rich"; "young"; "brave"; "gentle";
    "word"; "name"; "speak"; "hear"; "answer"; "follow"; "stand"; "bring";
    "better"; "honest"; "strange"; "present"; "heavy"; "quick"; "purpose";
    "letter"; "matter"; "reason"; "state"; "court"; "battle"; "sword";
    "crown"; "throne"; "castle"; "garden"; "forest"; "river"; "mountain";
    "summer"; "winter"; "morning"; "evening"; "tongue"; "spirit"; "shadow";
    "silver"; "stone"; "horse"; "tower"; "bridge"; "market"; "island";
    "ship"; "voyage"; "treasure"; "jewel"; "pearl"; "velvet"; "silk";
    "amber"; "copper"; "marble"; "ivory"; "scarlet"; "crimson"; "purple";
  |]

(* Values that never vary per document. *)
let country_pool =
  [|
    "United States"; "Germany"; "France"; "United Kingdom"; "Italy";
    "Netherlands"; "Spain"; "Japan"; "China"; "Australia"; "Canada";
    "Brazil"; "Argentina"; "Mexico"; "India"; "Russia"; "Sweden";
    "Norway"; "Denmark"; "Finland"; "Belgium"; "Switzerland"; "Austria";
    "Poland"; "Portugal"; "Greece"; "Turkey"; "Egypt"; "South Africa";
    "Kenya"; "Nigeria"; "Morocco"; "Israel"; "South Korea"; "Singapore";
    "Malaysia"; "Thailand"; "Indonesia"; "Philippines"; "New Zealand";
    "Chile"; "Peru"; "Colombia"; "Venezuela"; "Ireland";
  |]

let vowels = [| "a"; "e"; "i"; "o"; "u"; "ou"; "ea"; "ai"; "oo" |]

let onsets =
  [|
    "b"; "c"; "d"; "f"; "g"; "h"; "j"; "k"; "l"; "m"; "n"; "p"; "r"; "s";
    "t"; "v"; "w"; "br"; "cr"; "dr"; "fl"; "gr"; "pl"; "pr"; "sl"; "st";
    "str"; "th"; "tr"; "ch"; "sh"; "wh"; "qu"; "sp"; "sc"; "bl"; "cl";
  |]

let codas = [| ""; ""; ""; "n"; "r"; "s"; "t"; "l"; "m"; "d"; "k"; "nd"; "nt"; "st"; "ck"; "ng" |]

type t = {
  words : string array;  (* rank order, most frequent first *)
  zipf : Prng.Zipf.t;
  gold_rank : int;
  first_names : string array;
  last_names : string array;
  hosts : string array;
  cities : string array;
  street_words : string array;
  provinces : string array;
  country_zipf : Prng.Zipf.t;
}

let vocabulary_count = 17_000

(* Pinned so that with Zipf(s=1) over 17,000 ranks the word appears roughly
   once every ~2,600 words — a handful of hits per hundred descriptions,
   matching the "restrictive but non-empty" selectivity Q14 wants. *)
let pinned_gold_rank = 420

let synth_word g =
  let syllables = 1 + Prng.int g 3 in
  let buf = Buffer.create 12 in
  for _ = 1 to syllables do
    Buffer.add_string buf (Prng.pick g onsets);
    Buffer.add_string buf (Prng.pick g vowels)
  done;
  Buffer.add_string buf (Prng.pick g codas);
  Buffer.contents buf

let capitalize s =
  if s = "" then s else String.mapi (fun i c -> if i = 0 then Char.uppercase_ascii c else c) s

(* Deterministic pool of distinct words, independent of document seed. *)
let build_pool g seen count =
  let out = Array.make count "" in
  let i = ref 0 in
  while !i < count do
    let w = synth_word g in
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      out.(!i) <- w;
      incr i
    end
  done;
  out

let dictionary_seed = 0x1234_5678_9ABC_DEF0L

let create () =
  let g = Prng.create ~seed:dictionary_seed () in
  let seen = Hashtbl.create (4 * vocabulary_count) in
  Array.iter (fun w -> Hashtbl.replace seen w ()) common_words;
  Hashtbl.replace seen "gold" ();
  let synth = build_pool g seen (vocabulary_count - Array.length common_words - 1) in
  let words = Array.make vocabulary_count "" in
  let n_common = Array.length common_words in
  Array.blit common_words 0 words 0 n_common;
  let cursor = ref 0 in
  for rank = n_common to vocabulary_count - 1 do
    if rank = pinned_gold_rank then words.(rank) <- "gold"
    else begin
      words.(rank) <- synth.(!cursor);
      incr cursor
    end
  done;
  let first_names = Array.map capitalize (build_pool g seen 400) in
  let last_names = Array.map capitalize (build_pool g seen 600) in
  let hosts =
    Array.map (fun w -> w ^ (if Prng.bool g then ".com" else ".org")) (build_pool g seen 120)
  in
  let cities = Array.map capitalize (build_pool g seen 250) in
  let street_words = Array.map capitalize (build_pool g seen 300) in
  let provinces = Array.map capitalize (build_pool g seen 60) in
  {
    words;
    zipf = Prng.Zipf.create ~n:vocabulary_count ~s:1.0;
    gold_rank = pinned_gold_rank;
    first_names;
    last_names;
    hosts;
    cities;
    street_words;
    provinces;
    country_zipf = Prng.Zipf.create ~n:(Array.length country_pool) ~s:1.1;
  }

let vocabulary_size d = Array.length d.words

let word d rank = d.words.(rank)

let sample_word d g = d.words.(Prng.Zipf.sample d.zipf g)

let gold_rank d = d.gold_rank

let sample_sentence d g n =
  let buf = Buffer.create (n * 7) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (sample_word d g)
  done;
  Buffer.contents buf

let first_name d g = Prng.pick g d.first_names
let last_name d g = Prng.pick g d.last_names
let mail_host d g = Prng.pick g d.hosts
let city d g = Prng.pick g d.cities
let street_word d g = Prng.pick g d.street_words
let province d g = Prng.pick g d.provinces

let country d g = country_pool.(Prng.Zipf.sample d.country_zipf g)

let countries _ = Array.copy country_pool
