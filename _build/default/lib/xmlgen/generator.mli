(** The benchmark document generator — xmlgen (paper, Section 4.5).

    Properties reproduced from the paper's requirement list:
    platform-independent determinism (own PRNG, {!Xmark_prng.Prng}),
    accurate linear scaling (entity populations from {!Profile}),
    time/space efficiency (single pass, streaming into a {!Sink}, no
    per-entity state) and referential consistency (every item referenced by
    exactly one auction, via a keyed permutation instead of xmlgen's
    replayed random streams).

    The default factor-to-size calibration matches Figure 3: factor 1.0
    produces slightly more than 100 MB. *)

val default_seed : int64

val generate : ?seed:int64 -> factor:float -> Sink.t -> unit
(** Stream one benchmark document into the sink.  Identical seed and
    factor produce an identical document. *)

val to_string : ?seed:int64 -> factor:float -> unit -> string

val to_file : ?seed:int64 -> ?dtd:bool -> factor:float -> string -> unit
(** Write the document to a file, preceded by the DOCTYPE when [dtd]. *)

val to_dom : ?seed:int64 -> factor:float -> unit -> Xmark_xml.Dom.node
(** Generate directly into a DOM, skipping serialization and parsing. *)

val measure : ?seed:int64 -> factor:float -> unit -> int * int
(** [(serialized_bytes, element_count)] of the document, computed without
    materializing it. *)

val to_split_files :
  ?seed:int64 -> factor:float -> dir:string -> per_file:int -> unit -> Sink.split_info
(** Section 5's work-around mode: [per_file] entities per file. *)
