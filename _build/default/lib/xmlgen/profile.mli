(** Entity cardinalities and their scaling law.

    The paper scales "selected sets like the number of items and persons"
    linearly with the user factor and calibrates factor 1.0 to slightly
    more than 100 MB (Section 4.5, Figure 3).  The base cardinalities here
    are those of the original tool: 25,500 persons, 12,000 open and 9,750
    closed auctions, 1,000 categories at factor 1.0; the item population
    equals open + closed auctions (= 21,750) so that every item is
    referenced by exactly one auction — the referential-consistency
    invariant of Section 4.5 — and is distributed over the six world
    regions with North America and Europe dominating. *)

type region = Africa | Asia | Australia | Europe | Namerica | Samerica

val regions : region list
(** In document order: africa, asia, australia, europe, namerica,
    samerica. *)

val region_tag : region -> string

type counts = {
  categories : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  items : int;  (** = open_auctions + closed_auctions *)
  items_per_region : (region * int) list;  (** sums to [items] *)
  edges : int;  (** category-graph edges *)
}

val counts : float -> counts
(** [counts factor]; every set has at least one member, so even factor
    0.0001 yields a well-formed document.
    @raise Invalid_argument on a non-positive factor. *)

val region_of_item : counts -> int -> region
(** Region that hosts the item with the given index (items are numbered
    globally, region by region, in document order). *)

val region_item_range : counts -> region -> int * int
(** [(first, count)] of the item-index range a region hosts. *)
