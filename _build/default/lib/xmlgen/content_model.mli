(** Structured form of the benchmark DTD.

    The single source of truth for the document grammar: {!Validator}
    checks instances against it, {!Xsd} renders it as W3C XML Schema, and
    {!Dtd} carries the same declarations in DTD syntax. *)

type regexp =
  | El of string
  | Seq of regexp list
  | Alt of regexp list
  | Opt of regexp
  | Star of regexp
  | Plus of regexp

type content =
  | Children of regexp  (** element content; no character data *)
  | Mixed of string list  (** [(#PCDATA | a | b)*] *)
  | Pcdata  (** [(#PCDATA)] *)
  | Empty

type attr_decl = { aname : string; required : bool; is_id : bool; is_idref : bool }

val inline : string list
(** The inline markup tags ([bold], [keyword], [emph]). *)

val auction_content : regexp * regexp
(** Content models of [open_auction] and [closed_auction]. *)

val elements : (string * content) list
(** Content model of every declared element. *)

val attributes : (string * attr_decl list) list
(** Attribute declarations per element (elements with none are absent). *)
