lib/xmlgen/profile.ml: Float List
