lib/xmlgen/validator.ml: Content_model Format Hashtbl List Option Printf String Xmark_xml
