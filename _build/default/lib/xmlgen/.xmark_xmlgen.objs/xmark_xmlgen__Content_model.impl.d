lib/xmlgen/content_model.ml:
