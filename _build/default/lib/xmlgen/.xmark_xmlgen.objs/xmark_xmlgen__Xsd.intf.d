lib/xmlgen/xsd.mli: Xmark_xml
