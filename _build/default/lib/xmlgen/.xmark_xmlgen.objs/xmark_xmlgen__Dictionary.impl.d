lib/xmlgen/dictionary.ml: Array Buffer Char Hashtbl String Xmark_prng
