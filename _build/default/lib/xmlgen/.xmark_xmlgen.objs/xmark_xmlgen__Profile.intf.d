lib/xmlgen/profile.mli:
