lib/xmlgen/generator.ml: Array Buffer Char Dictionary Dtd Float Fun List Printf Profile Sink String Xmark_prng
