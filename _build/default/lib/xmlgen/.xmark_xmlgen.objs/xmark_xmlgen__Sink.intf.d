lib/xmlgen/sink.mli: Buffer Xmark_xml
