lib/xmlgen/xsd.ml: Content_model List Option Xmark_xml
