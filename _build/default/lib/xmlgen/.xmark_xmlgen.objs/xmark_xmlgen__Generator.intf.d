lib/xmlgen/generator.mli: Sink Xmark_xml
