lib/xmlgen/validator.mli: Format Xmark_xml
