lib/xmlgen/sink.ml: Buffer Filename List Printf String Xmark_xml
