lib/xmlgen/content_model.mli:
