lib/xmlgen/dictionary.mli: Xmark_prng
