lib/xmlgen/dtd.ml: String
