lib/xmlgen/dtd.mli:
