type region = Africa | Asia | Australia | Europe | Namerica | Samerica

let regions = [ Africa; Asia; Australia; Europe; Namerica; Samerica ]

let region_tag = function
  | Africa -> "africa"
  | Asia -> "asia"
  | Australia -> "australia"
  | Europe -> "europe"
  | Namerica -> "namerica"
  | Samerica -> "samerica"

type counts = {
  categories : int;
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  items : int;
  items_per_region : (region * int) list;
  edges : int;
}

(* Base populations at factor 1.0 (original xmlgen). *)
let base_categories = 1_000
let base_persons = 25_500
let base_open = 12_000
let base_closed = 9_750
let base_edges = 3_800

(* Share of the item population per region, at factor 1.0:
   550 / 2000 / 2200 / 6000 / 10000 / 1000 out of 21750. *)
let region_share = function
  | Africa -> 550
  | Asia -> 2_000
  | Australia -> 2_200
  | Europe -> 6_000
  | Namerica -> 10_000
  | Samerica -> 1_000

let scaled factor base = max 1 (int_of_float (Float.round (float_of_int base *. factor)))

let counts factor =
  if factor <= 0.0 then invalid_arg "Profile.counts: factor must be positive";
  let open_auctions = scaled factor base_open in
  let closed_auctions = scaled factor base_closed in
  let items = open_auctions + closed_auctions in
  (* Largest-remainder apportionment of [items] over the region shares, so
     regional counts track the paper's proportions at any factor. *)
  let total_share = List.fold_left (fun acc r -> acc + region_share r) 0 regions in
  let quota r = float_of_int (items * region_share r) /. float_of_int total_share in
  let floors = List.map (fun r -> (r, int_of_float (quota r))) regions in
  let assigned = List.fold_left (fun acc (_, k) -> acc + k) 0 floors in
  let by_remainder =
    List.sort
      (fun (r1, k1) (r2, k2) ->
        compare (quota r2 -. float_of_int k2) (quota r1 -. float_of_int k1))
      floors
    |> List.map fst
  in
  let leftover = items - assigned in
  let bump = List.filteri (fun i _ -> i < leftover) by_remainder in
  let items_per_region =
    List.map (fun r -> (r, List.assoc r floors + if List.mem r bump then 1 else 0)) regions
  in
  {
    categories = scaled factor base_categories;
    persons = scaled factor base_persons;
    open_auctions;
    closed_auctions;
    items;
    items_per_region;
    edges = scaled factor base_edges;
  }

let region_item_range c region =
  let rec scan offset = function
    | [] -> invalid_arg "Profile.region_item_range"
    | (r, k) :: rest -> if r = region then (offset, k) else scan (offset + k) rest
  in
  scan 0 c.items_per_region

let region_of_item c idx =
  let rec scan offset = function
    | [] -> invalid_arg "Profile.region_of_item: index out of range"
    | (r, k) :: rest -> if idx < offset + k then r else scan (offset + k) rest
  in
  scan 0 c.items_per_region
