(** Vocabulary and name pools for the document generator.

    The original xmlgen draws its prose from the 17,000 most frequent
    non-stopword Shakespeare words and scrambles Internet phone directories
    for person names (paper, Section 4.3).  Neither corpus ships in this
    container, so this module synthesizes deterministic stand-ins with the
    same statistical profile: a 17,000-entry vocabulary whose rank
    frequencies follow a Zipf law, seeded with common English words at the
    frequent ranks (including "gold", which query Q14 searches for), plus
    pools for names, mail hosts, cities, streets and provinces.  The pools
    depend only on a fixed internal seed, never on the document seed, so
    every generated document shares one vocabulary — exactly like the
    original tool. *)

type t

val create : unit -> t
(** Build the pools.  Deterministic; costs a few milliseconds. *)

val vocabulary_size : t -> int
(** 17,000. *)

val word : t -> int -> string
(** [word d rank]; rank 0 is the most frequent word. *)

val sample_word : t -> Xmark_prng.Prng.t -> string
(** Draw a word with Zipf-distributed rank. *)

val gold_rank : t -> int
(** Rank of the word "gold" — pinned so Q14 selectivity is stable. *)

val sample_sentence : t -> Xmark_prng.Prng.t -> int -> string
(** [sample_sentence d g n] is [n] Zipf-sampled words joined by single
    spaces (no trailing space). *)

val first_name : t -> Xmark_prng.Prng.t -> string
val last_name : t -> Xmark_prng.Prng.t -> string
val mail_host : t -> Xmark_prng.Prng.t -> string
val city : t -> Xmark_prng.Prng.t -> string
val street_word : t -> Xmark_prng.Prng.t -> string
val province : t -> Xmark_prng.Prng.t -> string

val country : t -> Xmark_prng.Prng.t -> string
(** Weighted draw: "United States" dominates, as in the original tool. *)

val countries : t -> string array
(** All country values, most likely first. *)
