(** Structured form of the benchmark DTD: content models and attribute
    declarations.  Shared by {!Validator} (checking) and {!Xsd}
    (XML Schema emission); the textual DTD in {!Dtd} is the same
    information in DTD syntax. *)

(* --- content models -------------------------------------------------------- *)

type regexp =
  | El of string
  | Seq of regexp list
  | Alt of regexp list
  | Opt of regexp
  | Star of regexp
  | Plus of regexp

type content =
  | Children of regexp  (* element content: no character data allowed *)
  | Mixed of string list  (* (#PCDATA | a | b)* *)
  | Pcdata  (* (#PCDATA) *)
  | Empty

type attr_decl = { aname : string; required : bool; is_id : bool; is_idref : bool }

let inline = [ "bold"; "keyword"; "emph" ]

let auction_content =
  (* open_auction and closed_auction differ only around the bid history *)
  let annotation = El "annotation" in
  ( Seq
      [
        El "initial"; Opt (El "reserve"); Star (El "bidder"); El "current"; Opt (El "privacy");
        El "itemref"; El "seller"; annotation; El "quantity"; El "type"; El "interval";
      ],
    Seq
      [
        El "seller"; El "buyer"; El "itemref"; El "price"; El "date"; El "quantity"; El "type";
        Opt annotation;
      ] )

(* The DTD of Dtd.declarations, as structured data. *)
let elements : (string * content) list =
  let open_model, closed_model = auction_content in
  [
    ("site",
     Children (Seq [ El "regions"; El "categories"; El "catgraph"; El "people";
                     El "open_auctions"; El "closed_auctions" ]));
    ("categories", Children (Plus (El "category")));
    ("category", Children (Seq [ El "name"; El "description" ]));
    ("name", Pcdata);
    ("description", Children (Alt [ El "text"; El "parlist" ]));
    ("text", Mixed inline);
    ("bold", Mixed inline);
    ("keyword", Mixed inline);
    ("emph", Mixed inline);
    ("parlist", Children (Star (El "listitem")));
    ("listitem", Children (Star (Alt [ El "text"; El "parlist" ])));
    ("catgraph", Children (Star (El "edge")));
    ("edge", Empty);
    ("regions",
     Children (Seq [ El "africa"; El "asia"; El "australia"; El "europe"; El "namerica";
                     El "samerica" ]));
    ("africa", Children (Star (El "item")));
    ("asia", Children (Star (El "item")));
    ("australia", Children (Star (El "item")));
    ("europe", Children (Star (El "item")));
    ("namerica", Children (Star (El "item")));
    ("samerica", Children (Star (El "item")));
    ("item",
     Children (Seq [ El "location"; El "quantity"; El "name"; El "payment"; El "description";
                     El "shipping"; Plus (El "incategory"); El "mailbox" ]));
    ("location", Pcdata);
    ("quantity", Pcdata);
    ("payment", Pcdata);
    ("shipping", Pcdata);
    ("reserve", Pcdata);
    ("incategory", Empty);
    ("mailbox", Children (Star (El "mail")));
    ("mail", Children (Seq [ El "from"; El "to"; El "date"; El "text" ]));
    ("from", Pcdata);
    ("to", Pcdata);
    ("date", Pcdata);
    ("itemref", Empty);
    ("personref", Empty);
    ("people", Children (Star (El "person")));
    ("person",
     Children (Seq [ El "name"; El "emailaddress"; Opt (El "phone"); Opt (El "address");
                     Opt (El "homepage"); Opt (El "creditcard"); Opt (El "profile");
                     Opt (El "watches") ]));
    ("emailaddress", Pcdata);
    ("phone", Pcdata);
    ("address",
     Children (Seq [ El "street"; El "city"; El "country"; Opt (El "province"); El "zipcode" ]));
    ("street", Pcdata);
    ("city", Pcdata);
    ("province", Pcdata);
    ("zipcode", Pcdata);
    ("country", Pcdata);
    ("homepage", Pcdata);
    ("creditcard", Pcdata);
    ("profile",
     Children (Seq [ Star (El "interest"); Opt (El "education"); Opt (El "gender");
                     El "business"; Opt (El "age") ]));
    ("interest", Empty);
    ("education", Pcdata);
    ("gender", Pcdata);
    ("business", Pcdata);
    ("age", Pcdata);
    ("watches", Children (Star (El "watch")));
    ("watch", Empty);
    ("open_auctions", Children (Star (El "open_auction")));
    ("open_auction", Children open_model);
    ("initial", Pcdata);
    ("bidder", Children (Seq [ El "date"; El "time"; El "personref"; El "increase" ]));
    ("time", Pcdata);
    ("increase", Pcdata);
    ("current", Pcdata);
    ("privacy", Pcdata);
    ("seller", Empty);
    ("annotation", Children (Seq [ El "author"; Opt (El "description"); El "happiness" ]));
    ("author", Empty);
    ("happiness", Pcdata);
    ("type", Pcdata);
    ("interval", Children (Seq [ El "start"; El "end" ]));
    ("start", Pcdata);
    ("end", Pcdata);
    ("closed_auctions", Children (Star (El "closed_auction")));
    ("closed_auction", Children closed_model);
    ("buyer", Empty);
    ("price", Pcdata);
  ]

let attributes : (string * attr_decl list) list =
  let id = { aname = "id"; required = true; is_id = true; is_idref = false } in
  let idref name = { aname = name; required = true; is_id = false; is_idref = true } in
  [
    ("category", [ id ]);
    ("edge", [ idref "from"; idref "to" ]);
    ("item", [ id; { aname = "featured"; required = false; is_id = false; is_idref = false } ]);
    ("incategory", [ idref "category" ]);
    ("itemref", [ idref "item" ]);
    ("personref", [ idref "person" ]);
    ("person", [ id ]);
    ("profile", [ { aname = "income"; required = false; is_id = false; is_idref = false } ]);
    ("interest", [ idref "category" ]);
    ("watch", [ idref "open_auction" ]);
    ("open_auction", [ id ]);
    ("seller", [ idref "person" ]);
    ("author", [ idref "person" ]);
    ("buyer", [ idref "person" ]);
  ]

