(** Validating-parser semantics for the benchmark DTD.

    Section 5 notes that "a validating parser tries to check for
    uniqueness and existence of IDs and IDREFs" and that split documents
    therefore need a relaxed DTD.  This module is that validating parser's
    checking half: it verifies a document tree against the auction DTD —
    content models (child sequences against the declared regular
    expressions), attribute declarations (REQUIRED present, no undeclared
    attributes), ID uniqueness and IDREF resolution.

    Used by the test suite to prove every generated document valid, and by
    [validate ~mode:`Split] to show split files pass exactly when the
    relaxed DTD's semantics are applied. *)

type error = {
  path : string;  (** element path from the root, e.g. [site/people/person] *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val validate : ?mode:[ `Single | `Split ] -> Xmark_xml.Dom.node -> error list
(** All violations, in document order ([] = valid).  [`Single] (default)
    enforces ID/IDREF integrity; [`Split] treats them as plain CDATA, as
    the split-mode DTD declares. *)

val is_valid : ?mode:[ `Single | `Split ] -> Xmark_xml.Dom.node -> bool
