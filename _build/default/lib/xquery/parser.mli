(** Recursive-descent parser for the benchmark's XQuery subset.

    Accepts the official XMark query formulations: an optional prolog of
    [declare function local:name($p, ...) { expr };] declarations followed
    by one expression.  XQuery comments [(: ... :)] may appear anywhere
    whitespace may.  Known deviations from full XQuery, acceptable for the
    benchmark corpus: the [-] character is treated as part of a name when
    it glues two name characters together (so [zero-or-one] lexes as one
    name; write subtraction with spaces), and namespace prefixes other
    than the transparent [fn:] / [local:] / [xs:] are not supported. *)

exception Error of { pos : int; message : string }

val parse_query : string -> Ast.query
(** @raise Error on syntax errors, with a character offset. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (no prolog). *)

val describe_error : string -> exn -> string
(** Human-readable message with line/column context. *)
