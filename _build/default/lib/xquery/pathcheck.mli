(** Online path validation — the feature the paper's Section 7 asks for:

    "If a query processor was able to validate path expressions online,
    i.e., tell the user whether a given sequence of tags actually exists
    in the database instance, it would often be of great help to users as
    quite regularly, simple typos in path names often evaluate to empty
    results. ... it could well issue a warning if a path expression
    contains non-existing tags."

    [Make (S)] checks every name test in a query against the store's tag
    statistics and reports the ones with an empty extent.  Only possible
    on backends that expose [tag_count]; others yield no warnings. *)

type warning = {
  tag : string;  (** the name test with an empty extent *)
  context : string;  (** rendering of the path expression it appears in *)
  suggestion : string option;
      (** nearest tag (edit distance <= 2) that does occur — the paper's
          Query-By-Example hint in miniature *)
}

val pp_warning : Format.formatter -> warning -> unit

module Make (S : Store_sig.S) : sig
  val check : ?vocabulary:string list -> S.t -> Ast.query -> warning list
  (** Warnings in source order, de-duplicated by tag.  [vocabulary] are
      candidate tags for the did-you-mean suggestion (e.g. the DTD's
      element names); only candidates that actually occur in the store are
      suggested. *)
end
