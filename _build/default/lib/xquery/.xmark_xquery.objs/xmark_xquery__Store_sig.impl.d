lib/xquery/store_sig.ml:
