lib/xquery/eval.mli: Ast Store_sig Xmark_xml
