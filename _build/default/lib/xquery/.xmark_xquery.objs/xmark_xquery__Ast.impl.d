lib/xquery/ast.ml: Format List Option
