lib/xquery/pathcheck.mli: Ast Format Store_sig
