lib/xquery/parser.ml: Ast Buffer List Option Printexc Printf String
