lib/xquery/eval.ml: Array Ast Buffer Float Fun Hashtbl List Option Parser Printf Store_sig String Xmark_xml
