lib/xquery/pathcheck.ml: Array Ast Format Fun Hashtbl List Option Printf Store_sig String
