lib/prng/prng.mli:
