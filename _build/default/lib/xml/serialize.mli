(** XML serialization of {!Dom} trees.

    Output uses 7-bit ASCII and escapes the five predefined entities, which
    is exactly the character-set contract of the benchmark document
    (paper, Section 4.4). *)

val escape_text : string -> string
(** Escape ampersand and angle brackets for character-data position. *)

val escape_attr : string -> string
(** Escape ampersand, left angle bracket and double quote for a
    double-quoted attribute value. *)

val to_buffer : ?indent:bool -> Buffer.t -> Dom.node -> unit
(** Serialize a subtree.  With [indent], children of purely element-content
    nodes are placed on their own indented lines; mixed content is emitted
    verbatim so no whitespace is invented inside text. *)

val to_string : ?indent:bool -> Dom.node -> string

val to_channel : ?indent:bool -> out_channel -> Dom.node -> unit

val fragment_to_string : Dom.node list -> string
(** Serialize a node sequence without a surrounding element — the shape of
    an XQuery result. *)
