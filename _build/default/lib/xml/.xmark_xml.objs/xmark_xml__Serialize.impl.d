lib/xml/serialize.ml: Buffer Dom List String
