lib/xml/sax.ml: Buffer Char Dom Fun List Printf String
