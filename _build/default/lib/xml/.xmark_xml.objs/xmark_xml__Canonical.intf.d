lib/xml/canonical.mli: Dom
