lib/xml/canonical.ml: Buffer Dom List Serialize String
