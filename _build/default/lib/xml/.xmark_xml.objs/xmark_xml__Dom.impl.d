lib/xml/dom.ml: Buffer List String
