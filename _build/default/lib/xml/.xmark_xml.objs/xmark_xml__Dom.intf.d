lib/xml/dom.mli:
