(** Canonical form for comparing query-processor output.

    The paper (Section 1) observes that deciding when two XML query results
    are equivalent is itself a research problem: physical representation,
    attribute order and whitespace all vary between engines.  This module
    implements the pragmatic canonicalization the benchmark needs — in the
    spirit of Canonical XML — so results from different storage backends
    can be compared byte-wise:

    - attributes sorted by name, always double-quoted;
    - empty elements written as a start/end pair;
    - adjacent text coalesced; whitespace-only text between elements
      dropped; remaining text whitespace-normalized;
    - the five predefined entities escaped. *)

val of_node : Dom.node -> string

val of_nodes : Dom.node list -> string
(** Canonical form of a node sequence: canonical items joined by newlines. *)

val equal : Dom.node list -> Dom.node list -> bool
(** Equivalence of two results under canonicalization. *)
