type rel = { cols : string array; rows : Table.row array }

let of_table t = { cols = Table.columns t; rows = Table.rows t }

let col r c =
  let n = Array.length r.cols in
  let rec find i = if i >= n then raise Not_found else if r.cols.(i) = c then i else find (i + 1) in
  find 0

let filter pred r = { r with rows = Array.of_seq (Seq.filter pred (Array.to_seq r.rows)) }

let project r specs =
  let cols = Array.of_list (List.map fst specs) in
  let funcs = Array.of_list (List.map snd specs) in
  { cols; rows = Array.map (fun row -> Array.map (fun f -> f row) funcs) r.rows }

let concat_rows a b = Array.append a b

let hash_join ~left ~right ~lkey ~rkey =
  let buckets = Hashtbl.create (max 16 (Array.length right.rows)) in
  Array.iter
    (fun row ->
      let k = rkey row in
      if not (Value.is_null k) then
        Hashtbl.replace buckets k (row :: Option.value ~default:[] (Hashtbl.find_opt buckets k)))
    right.rows;
  let out = ref [] in
  Array.iter
    (fun lrow ->
      let k = lkey lrow in
      if not (Value.is_null k) then
        match Hashtbl.find_opt buckets k with
        | None -> ()
        | Some rrows ->
            List.iter (fun rrow -> out := concat_rows lrow rrow :: !out) (List.rev rrows))
    left.rows;
  { cols = Array.append left.cols right.cols; rows = Array.of_list (List.rev !out) }

let left_outer_hash_join ~left ~right ~lkey ~rkey =
  let buckets = Hashtbl.create (max 16 (Array.length right.rows)) in
  Array.iter
    (fun row ->
      let k = rkey row in
      if not (Value.is_null k) then
        Hashtbl.replace buckets k (row :: Option.value ~default:[] (Hashtbl.find_opt buckets k)))
    right.rows;
  let null_right = Array.make (Array.length right.cols) Value.Null in
  let out = ref [] in
  Array.iter
    (fun lrow ->
      let k = lkey lrow in
      match (if Value.is_null k then None else Hashtbl.find_opt buckets k) with
      | None -> out := concat_rows lrow null_right :: !out
      | Some rrows ->
          List.iter (fun rrow -> out := concat_rows lrow rrow :: !out) (List.rev rrows))
    left.rows;
  { cols = Array.append left.cols right.cols; rows = Array.of_list (List.rev !out) }

let theta_join ~left ~right ~pred =
  let out = ref [] in
  Array.iter
    (fun lrow ->
      Array.iter (fun rrow -> if pred lrow rrow then out := concat_rows lrow rrow :: !out) right.rows)
    left.rows;
  { cols = Array.append left.cols right.cols; rows = Array.of_list (List.rev !out) }

let sort r ~cmp =
  let rows = Array.copy r.rows in
  Array.stable_sort cmp rows;
  { r with rows }

let group r ~key ~init ~step ~finish =
  let acc : (Value.t, 'a ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let k = key row in
      match Hashtbl.find_opt acc k with
      | Some state -> state := step !state row
      | None ->
          Hashtbl.add acc k (ref (step init row));
          order := k :: !order)
    r.rows;
  let rows =
    List.rev_map (fun k -> finish k !(Hashtbl.find acc k)) !order |> Array.of_list
  in
  { cols = [||]; rows }

let distinct r ~key =
  let seen = Hashtbl.create 64 in
  let keep row =
    let k = key row in
    if Hashtbl.mem seen k then false
    else begin
      Hashtbl.add seen k ();
      true
    end
  in
  { r with rows = Array.of_seq (Seq.filter keep (Array.to_seq r.rows)) }

let difference a b ~key =
  let present = Hashtbl.create (max 16 (Array.length b.rows)) in
  Array.iter (fun row -> Hashtbl.replace present (key row) ()) b.rows;
  { a with rows = Array.of_seq (Seq.filter (fun row -> not (Hashtbl.mem present (key row))) (Array.to_seq a.rows)) }

let count r = Array.length r.rows
