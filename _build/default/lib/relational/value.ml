type t = Int of int | Num of float | Str of string | Null

let rank = function Null -> 0 | Int _ | Num _ -> 1 | Str _ -> 2

let to_float = function
  | Int i -> float_of_int i
  | Num f -> f
  | Str s -> ( match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan)
  | Null -> Float.nan

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | (Int _ | Num _), (Int _ | Num _) -> Float.compare (to_float a) (to_float b)
  | Str x, Str y -> String.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Int i -> Hashtbl.hash (float_of_int i)
  | Num f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let to_string = function
  | Int i -> string_of_int i
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.12g" f
  | Str s -> s
  | Null -> ""

let of_float f = Num f

let is_null = function Null -> true | Int _ | Num _ | Str _ -> false

let pp fmt v = Format.pp_print_string fmt (to_string v)
