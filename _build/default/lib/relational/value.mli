(** Scalar values of the mini relational engine.

    Strings are the generic type, mirroring the paper's observation that
    XML data arrives as strings and is coerced at runtime; [Num] and [Int]
    exist for counters and cast results. *)

type t = Int of int | Num of float | Str of string | Null

val compare : t -> t -> int
(** Total order: Null < Int/Num (numerically merged) < Str. *)

val equal : t -> t -> bool

val hash : t -> int

val to_string : t -> string

val to_float : t -> float
(** Runtime cast; [Str] parses, failures and [Null] give [nan]. *)

val of_float : float -> t

val is_null : t -> bool

val pp : Format.formatter -> t -> unit
