(** Hash indexes over a table column (or a computed key).

    Lookups return row identifiers in insertion (= document) order, so the
    XML backends can rely on index results being ordered. *)

type t

val build : Table.t -> string -> t
(** Index an existing column. *)

val build_keyed : Table.t -> (Table.row -> Value.t) -> t
(** Index a computed key. *)

val lookup : t -> Value.t -> int list
(** Matching row identifiers, ascending. *)

val lookup_rows : t -> Table.t -> Value.t -> Table.row list

val unique : t -> Value.t -> int option
(** First match, if any. *)

val size : t -> int
(** Number of distinct keys. *)

val byte_size : t -> int
