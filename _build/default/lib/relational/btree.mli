(** B+-tree secondary index with range scans.

    The hash indexes of {!Index} serve equality probes (reference chasing,
    ID lookup); range predicates — Q5's [price >= 40], Q12's
    [income > 50000] — want an ordered structure.  This is a classic
    in-memory B+-tree: values live in linked leaves, so a range scan is a
    descent plus a leaf walk.  Duplicate keys are allowed and preserve
    insertion order, which for the XML mappings is document order. *)

type t

val create : ?branching:int -> unit -> t
(** [branching] is the maximum number of children of an internal node
    (default 32; minimum 4). *)

val insert : t -> Value.t -> int -> unit
(** Add a (key, row-id) pair. *)

val build : ?branching:int -> Table.t -> string -> t
(** Index an existing column, in row order. *)

val lookup : t -> Value.t -> int list
(** Row ids with exactly this key, in insertion order. *)

val range :
  ?lower:Value.t * bool -> ?upper:Value.t * bool -> t -> int list
(** Row ids with keys in the given interval, in key order (insertion order
    within equal keys).  The boolean selects inclusiveness.  Omitted
    bounds are infinite. *)

val iter : (Value.t -> int -> unit) -> t -> unit
(** All entries in key order. *)

val cardinality : t -> int
(** Number of entries. *)

val depth : t -> int
(** Height of the tree (1 = a single leaf). *)

val min_key : t -> Value.t option

val max_key : t -> Value.t option

val byte_size : t -> int
