lib/relational/plan.ml: Array Hashtbl List Option Seq Table Value
