lib/relational/table.mli: Value
