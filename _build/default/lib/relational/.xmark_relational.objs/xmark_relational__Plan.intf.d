lib/relational/plan.mli: Table Value
