lib/relational/btree.mli: Table Value
