lib/relational/index.mli: Table Value
