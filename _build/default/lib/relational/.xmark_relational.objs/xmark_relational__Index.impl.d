lib/relational/index.ml: Array Hashtbl List Option String Table Value
