lib/relational/iter.ml: Array Hashtbl Lazy List Option Plan Table Value
