lib/relational/iter.mli: Plan Table Value
