lib/relational/table.ml: Array List Printf String Value
