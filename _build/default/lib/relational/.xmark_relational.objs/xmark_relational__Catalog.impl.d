lib/relational/catalog.ml: Index List Printf String Table
