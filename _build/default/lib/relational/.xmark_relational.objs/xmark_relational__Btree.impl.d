lib/relational/btree.ml: Array List String Table Value
