(** System catalog: the relation registry a query compiler consults.

    Deliberately naive — lookups scan the registry linearly — because the
    paper's Table 2 attributes compilation-cost differences to metadata
    volume: "System A has to access fewer metadata to compile a query than
    System B, thus spending only half as much time on query compilation".
    A one-relation heap store (System A) pays almost nothing here; a
    mapping with one relation per element tag (System B) pays per tag, per
    query.  The access counter feeds the compilation statistics. *)

type t

val create : unit -> t

val register : t -> Table.t -> unit
(** @raise Invalid_argument on duplicate table names. *)

val register_index : t -> table:string -> column:string -> Index.t -> unit

val lookup : t -> string -> Table.t option
(** Linear scan; counts as one metadata access per registered relation
    visited. *)

val lookup_index : t -> table:string -> column:string -> Index.t option

val tables : t -> Table.t list

val table_count : t -> int

val metadata_accesses : t -> int
(** Number of catalog entries visited since creation. *)

val reset_counters : t -> unit

val byte_size : t -> int
(** Total size of tables plus indexes. *)
