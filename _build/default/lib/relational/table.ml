type row = Value.t array

type t = {
  tname : string;
  cols : string array;
  mutable pending : row list;  (* reversed *)
  mutable sealed : row array;
  mutable count : int;
}

let create ~name ~cols =
  { tname = name; cols = Array.of_list cols; pending = []; sealed = [||]; count = 0 }

let name t = t.tname

let columns t = t.cols

let col_index t c =
  let n = Array.length t.cols in
  let rec find i = if i >= n then raise Not_found else if t.cols.(i) = c then i else find (i + 1) in
  find 0

let append t row =
  if Array.length row <> Array.length t.cols then
    invalid_arg
      (Printf.sprintf "Table.append %s: arity %d, expected %d" t.tname (Array.length row)
         (Array.length t.cols));
  t.pending <- row :: t.pending;
  t.count <- t.count + 1

let seal t =
  if t.pending <> [] then begin
    let fresh = Array.of_list (List.rev t.pending) in
    t.sealed <- Array.append t.sealed fresh;
    t.pending <- []
  end

let row_count t = t.count

let rows t =
  seal t;
  t.sealed

let get t i =
  seal t;
  t.sealed.(i)

let iter f t = Array.iteri f (rows t)

let fold f acc t =
  let acc = ref acc in
  Array.iteri (fun i r -> acc := f !acc i r) (rows t);
  !acc

let value_bytes = function
  | Value.Null -> 1
  | Value.Int _ -> 8
  | Value.Num _ -> 8
  | Value.Str s -> 16 + String.length s

let byte_size t =
  fold
    (fun acc _ r -> Array.fold_left (fun a v -> a + value_bytes v) (acc + 8) r)
    (64 + Array.fold_left (fun a c -> a + String.length c + 16) 0 t.cols)
    t
