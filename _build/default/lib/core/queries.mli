(** The twenty XMark queries (paper, Section 6), in their official XQuery
    formulations.  Each query challenges one query-processing concept;
    [concept] carries the paper's section heading ("Exact match",
    "Ordered access", ..., "Aggregation"). *)

type info = {
  number : int;  (** 1 to 20 *)
  concept : string;
  description : string;  (** the paper's natural-language statement *)
  text : string;  (** XQuery source *)
}

val all : info list
(** In query order, Q1 first. *)

val count : int
(** 20. *)

val get : int -> info
(** @raise Invalid_argument for numbers outside 1-20. *)

val text : int -> string
(** XQuery source of query [n]. *)
