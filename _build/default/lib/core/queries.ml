(** The twenty XMark queries (paper, Section 6), in their official XQuery
    formulations.  Each query challenges one query-processing concept; the
    [concept] field carries the paper's section heading. *)

type info = {
  number : int;
  concept : string;
  description : string;  (** the paper's natural-language statement *)
  text : string;  (** XQuery source *)
}

let doc = {|document("auction.xml")|}

let all : info list =
  [
    {
      number = 1;
      concept = "Exact match";
      description = "Return the name of the person with ID 'person0'.";
      text =
        "for $b in " ^ doc
        ^ {|/site/people/person[@id = "person0"] return $b/name/text()|};
    };
    {
      number = 2;
      concept = "Ordered access";
      description = "Return the initial increases of all open auctions.";
      text =
        "for $b in " ^ doc
        ^ {|/site/open_auctions/open_auction
return <increase> {$b/bidder[1]/increase/text()} </increase>|};
    };
    {
      number = 3;
      concept = "Ordered access";
      description =
        "Return the first and current increases of all open auctions whose \
         current increase is at least twice as high as the initial increase.";
      text =
        "for $b in " ^ doc
        ^ {|/site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
return <increase first="{$b/bidder[1]/increase/text()}" last="{$b/bidder[last()]/increase/text()}"/>|};
    };
    {
      number = 4;
      concept = "Ordered access";
      description =
        "List the reserves of those open auctions where a certain person \
         issued a bid before another person.";
      text =
        "for $b in " ^ doc
        ^ {|/site/open_auctions/open_auction
where some $pr1 in $b/bidder/personref[@person = "person20"],
           $pr2 in $b/bidder/personref[@person = "person51"]
      satisfies $pr1 << $pr2
return <history> {$b/reserve/text()} </history>|};
    };
    {
      number = 5;
      concept = "Casting";
      description = "How many sold items cost more than 40?";
      text =
        "count(for $i in " ^ doc
        ^ {|/site/closed_auctions/closed_auction
where $i/price/text() >= 40
return $i/price)|};
    };
    {
      number = 6;
      concept = "Regular path expressions";
      description = "How many items are listed on all continents?";
      text = "for $b in " ^ doc ^ {|//site/regions return count($b//item)|};
    };
    {
      number = 7;
      concept = "Regular path expressions";
      description = "How many pieces of prose are in our database?";
      text =
        "for $p in " ^ doc
        ^ {|/site
return count($p//description) + count($p//annotation) + count($p//emailaddress)|};
    };
    {
      number = 8;
      concept = "Chasing references";
      description = "List the names of persons and the number of items they bought.";
      text =
        "for $p in " ^ doc ^ {|/site/people/person
let $a := for $t in |} ^ doc
        ^ {|/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{$p/name/text()}"> {count($a)} </item>|};
    };
    {
      number = 9;
      concept = "Chasing references";
      description =
        "List the names of persons and the names of the items they bought in \
         Europe.";
      text =
        "for $p in " ^ doc ^ {|/site/people/person
let $a := for $t in |} ^ doc
        ^ {|/site/closed_auctions/closed_auction
          where $p/@id = $t/buyer/@person
          return let $n := for $t2 in |}
        ^ doc
        ^ {|/site/regions/europe/item
                    where $t/itemref/@item = $t2/@id
                    return $t2
             return <item> {$n/name/text()} </item>
return <person name="{$p/name/text()}"> {$a} </person>|};
    };
    {
      number = 10;
      concept = "Construction of complex results";
      description =
        "List all persons according to their interest; use French markup in \
         the result.";
      text =
        "for $i in distinct-values(" ^ doc
        ^ {|/site/people/person/profile/interest/@category)
let $p := for $t in |} ^ doc
        ^ {|/site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
                   <statistiques>
                     <sexe> {$t/profile/gender/text()} </sexe>
                     <age> {$t/profile/age/text()} </age>
                     <education> {$t/profile/education/text()} </education>
                     <revenu> {fn:data($t/profile/@income)} </revenu>
                   </statistiques>
                   <coordonnees>
                     <nom> {$t/name/text()} </nom>
                     <rue> {$t/address/street/text()} </rue>
                     <ville> {$t/address/city/text()} </ville>
                     <pays> {$t/address/country/text()} </pays>
                     <reseau>
                       <courrier> {$t/emailaddress/text()} </courrier>
                       <pagePerso> {$t/homepage/text()} </pagePerso>
                     </reseau>
                   </coordonnees>
                   <cartePaiement> {$t/creditcard/text()} </cartePaiement>
                 </personne>
return <categorie> {<id> {$i} </id>, $p} </categorie>|};
    };
    {
      number = 11;
      concept = "Joins on values";
      description =
        "For each person, list the number of items currently on sale whose \
         price does not exceed 0.02% of the person's income.";
      text =
        "for $p in " ^ doc ^ {|/site/people/person
let $l := for $i in |} ^ doc
        ^ {|/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * exactly-one($i/text())
          return $i
return <items name="{$p/name/text()}"> {count($l)} </items>|};
    };
    {
      number = 12;
      concept = "Joins on values";
      description =
        "For each person with an income of more than 50000, list the number \
         of items currently on sale whose price does not exceed 0.02% of the \
         person's income.";
      text =
        "for $p in " ^ doc ^ {|/site/people/person
let $l := for $i in |} ^ doc
        ^ {|/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * exactly-one($i/text())
          return $i
where $p/profile/@income > 50000
return <items person="{$p/profile/@income}"> {count($l)} </items>|};
    };
    {
      number = 13;
      concept = "Reconstruction";
      description =
        "List the names of items registered in Australia along with their \
         descriptions.";
      text =
        "for $i in " ^ doc
        ^ {|/site/regions/australia/item
return <item name="{$i/name/text()}"> {$i/description} </item>|};
    };
    {
      number = 14;
      concept = "Full text";
      description =
        "Return the names of all items whose description contains the word \
         'gold'.";
      text =
        "for $i in " ^ doc
        ^ {|/site//item
where contains(string(exactly-one($i/description)), "gold")
return $i/name/text()|};
    };
    {
      number = 15;
      concept = "Path traversals";
      description = "Print the keywords in emphasis in annotations of closed auctions.";
      text =
        "for $a in " ^ doc
        ^ {|/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
return <text> {$a} </text>|};
    };
    {
      number = 16;
      concept = "Path traversals";
      description =
        "Return the IDs of the sellers of those auctions that have one or \
         more keywords in emphasis.";
      text =
        "for $a in " ^ doc
        ^ {|/site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
return <person id="{$a/seller/@person}"/>|};
    };
    {
      number = 17;
      concept = "Missing elements";
      description = "Which persons don't have a homepage?";
      text =
        "for $p in " ^ doc
        ^ {|/site/people/person
where empty($p/homepage/text())
return <person name="{$p/name/text()}"/>|};
    };
    {
      number = 18;
      concept = "Function application";
      description =
        "Convert the currency of the reserves of all open auctions to \
         another currency.";
      text =
        {|declare function local:convert($v) { 2.20371 * $v };
for $i in |}
        ^ doc
        ^ {|/site/open_auctions/open_auction
return local:convert(zero-or-one($i/reserve))|};
    };
    {
      number = 19;
      concept = "Sorting";
      description =
        "Give an alphabetically ordered list of all items along with their \
         location.";
      text =
        "for $b in " ^ doc ^ {|/site/regions//item
let $k := $b/name/text()
order by zero-or-one($b/location) ascending
return <item name="{$k}"> {$b/location/text()} </item>|};
    };
    {
      number = 20;
      concept = "Aggregation";
      description =
        "Group customers by their income and output the cardinality of each \
         group.";
      text =
        {|<result>
  <preferred> {count(|}
        ^ doc
        ^ {|/site/people/person/profile[@income >= 100000])} </preferred>
  <standard> {count(|}
        ^ doc
        ^ {|/site/people/person/profile[@income < 100000 and @income >= 30000])} </standard>
  <challenge> {count(|}
        ^ doc
        ^ {|/site/people/person/profile[@income < 30000])} </challenge>
  <na> {count(for $p in |}
        ^ doc
        ^ {|/site/people/person where empty($p/profile/@income) return $p)} </na>
</result>|};
    };
  ]

let count = List.length all

let get n =
  match List.find_opt (fun q -> q.number = n) all with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Queries.get: no query Q%d" n)

let text n = (get n).text
