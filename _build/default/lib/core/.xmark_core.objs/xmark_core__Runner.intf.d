lib/core/runner.mli: Timing Xmark_xml
