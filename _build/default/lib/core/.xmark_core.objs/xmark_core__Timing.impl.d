lib/core/timing.ml: Float List Sys Unix
