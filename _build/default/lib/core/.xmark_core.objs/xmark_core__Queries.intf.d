lib/core/queries.mli:
