lib/core/plans_c.mli: Xmark_store Xmark_xml
