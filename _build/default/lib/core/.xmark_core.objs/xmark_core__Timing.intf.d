lib/core/timing.mli:
