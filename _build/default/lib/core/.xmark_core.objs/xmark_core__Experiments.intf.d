lib/core/experiments.mli: Runner
