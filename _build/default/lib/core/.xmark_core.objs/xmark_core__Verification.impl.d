lib/core/verification.ml: Digest Format List Queries Runner String
