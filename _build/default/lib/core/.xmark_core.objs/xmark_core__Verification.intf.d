lib/core/verification.mli: Format Runner
