lib/core/runner.ml: List Plans_c Queries Timing Xmark_relational Xmark_store Xmark_xml Xmark_xquery
