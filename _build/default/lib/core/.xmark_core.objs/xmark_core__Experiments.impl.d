lib/core/experiments.ml: Digest Filename Float Fun Gc Hashtbl List Printf Queries Runner String Sys Timing Unix Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
