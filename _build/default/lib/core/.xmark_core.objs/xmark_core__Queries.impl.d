lib/core/queries.ml: List Printf
