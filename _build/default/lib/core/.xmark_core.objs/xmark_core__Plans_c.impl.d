lib/core/plans_c.ml: Array Float Hashtbl List Option Printf String Xmark_relational Xmark_store Xmark_xml
