(** Cross-system result verification.

    Section 1 presents result verification as a first-class use of the
    benchmark: "the benchmark document and the queries can aid in the
    verification of query processors", while warning that deciding output
    equivalence is hard (attribute order, whitespace, physical
    representation).  This module runs the same queries on several systems
    and compares their canonical forms ({!Xmark_xml.Canonical}), reporting
    digests and the first divergence when systems disagree. *)

type divergence = {
  left : Runner.system;
  right : Runner.system;
  position : int;  (** first differing byte in the canonical forms *)
  left_excerpt : string;
  right_excerpt : string;
}

type report = {
  query : int;
  agreed : bool;
  items : (Runner.system * int) list;  (** result cardinality per system *)
  digests : (Runner.system * string) list;  (** md5 of canonical form *)
  divergence : divergence option;
}

val compare_systems :
  ?queries:int list -> ?systems:Runner.system list -> string -> report list
(** [compare_systems doc] runs the benchmark queries (all twenty by
    default) on the given systems (all seven by default) over the given
    serialized document and compares canonical results. *)

val pp_report : Format.formatter -> report -> unit

val all_agree : report list -> bool
