(** Wall-clock and CPU timers for the benchmark harness.

    The paper's Table 2 reports both CPU and total (elapsed) time; both
    are measured here, though on an all-in-memory substrate they track
    each other closely (EXPERIMENTS.md discusses the deviation). *)

type span = { wall_ms : float; cpu_ms : float }

val zero : span

val add : span -> span -> span

val measure : (unit -> 'a) -> 'a * span
(** Run the thunk once, returning its result and the elapsed span. *)

val time_only : (unit -> unit) -> span

val measure_median : runs:int -> (unit -> 'a) -> 'a * span
(** Run the thunk [runs] times and return the run with the median
    wall-clock time. *)
