lib/store/backend_shredded.ml: Array Buffer Hashtbl List Option String Xmark_relational Xmark_xml
