lib/store/path_compiler_b.ml: Array Backend_shredded List Printf Xmark_relational Xmark_xquery
