lib/store/path_compiler.ml: Array Backend_heap List Printf String Xmark_relational Xmark_xquery
