lib/store/backend_schema.ml: Array List Option String Xmark_relational Xmark_xml
