lib/store/summary.mli: Format Xmark_xml
