lib/store/updates.ml: Backend_mainmem List Option Printf String Xmark_xml
