lib/store/backend_heap.mli: Xmark_relational Xmark_xml Xmark_xquery
