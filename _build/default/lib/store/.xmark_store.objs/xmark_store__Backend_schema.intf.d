lib/store/backend_schema.mli: Xmark_relational Xmark_xml
