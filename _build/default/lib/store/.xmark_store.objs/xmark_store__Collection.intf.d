lib/store/collection.mli: Xmark_xml
