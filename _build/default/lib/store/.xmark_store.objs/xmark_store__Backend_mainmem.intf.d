lib/store/backend_mainmem.mli: Xmark_xml Xmark_xquery
