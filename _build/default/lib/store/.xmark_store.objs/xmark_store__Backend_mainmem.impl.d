lib/store/backend_mainmem.ml: Array Buffer Char Hashtbl List Option String Xmark_xml
