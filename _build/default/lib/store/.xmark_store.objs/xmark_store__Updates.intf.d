lib/store/updates.mli: Backend_mainmem Xmark_xml
