lib/store/collection.ml: Array Filename List Printf Sys Xmark_xml
