lib/store/summary.ml: Format Hashtbl List String Xmark_xml
