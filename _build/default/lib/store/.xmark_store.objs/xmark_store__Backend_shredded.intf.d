lib/store/backend_shredded.mli: Xmark_relational Xmark_xml Xmark_xquery
