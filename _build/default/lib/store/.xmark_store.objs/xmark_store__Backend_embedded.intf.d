lib/store/backend_embedded.mli: Backend_mainmem Xmark_xml
