lib/store/backend_heap.ml: Array Buffer Hashtbl List Option String Xmark_relational Xmark_xml
