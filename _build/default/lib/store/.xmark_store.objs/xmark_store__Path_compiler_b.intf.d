lib/store/path_compiler_b.mli: Backend_shredded Xmark_xquery
