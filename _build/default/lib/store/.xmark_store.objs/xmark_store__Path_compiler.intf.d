lib/store/path_compiler.mli: Backend_heap Xmark_xquery
