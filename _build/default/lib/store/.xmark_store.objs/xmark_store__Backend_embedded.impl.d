lib/store/backend_embedded.ml: Backend_mainmem String Xmark_xml
