(** DataGuide-style structural summary.

    The paper attributes System D's speed on regular path expressions to
    "a detailed structural summary of the database [that] can exploit it
    to optimize traversal-intensive queries ... structural summaries ...
    effectively play the role of an index or schema" (Section 7).  This
    module is that summary as a first-class value: a trie of label paths
    from the root, each holding its extent (the nodes reached by that
    path) — a strong DataGuide, since XML trees yield exactly one summary
    node per label path.

    Beyond query acceleration, the summary answers the paper's
    path-validation wish (does a tag sequence occur at all?) and gives a
    compact schema view of a schemaless document. *)

type t

val build : Xmark_xml.Dom.node -> t
(** One pass over the document. *)

val path_count : t -> int
(** Number of distinct label paths (summary nodes). *)

val cardinality : t -> string list -> int
(** [cardinality s path] is the extent size of the label path (from and
    including the root element); 0 when the path does not occur. *)

val extent : t -> string list -> Xmark_xml.Dom.node list
(** Nodes reached by the label path, in document order. *)

val exists : t -> string list -> bool

val paths : t -> (string list * int) list
(** All label paths with extent sizes, preorder. *)

val descendant_cardinality : t -> string -> int
(** Total extent of all label paths ending in the given tag — the size of
    a [//tag] result from the root. *)

val pp : Format.formatter -> t -> unit
(** Render as an indented tree with cardinalities — the "schema view". *)
