module Dom = Xmark_xml.Dom

type snode = {
  tag : string;
  mutable extent_rev : Dom.node list;
  mutable count : int;
  children : (string, snode) Hashtbl.t;
  mutable child_order : string list;  (* first-encounter order, reversed *)
}

type t = { root : snode }

let fresh tag =
  { tag; extent_rev = []; count = 0; children = Hashtbl.create 4; child_order = [] }

let build doc_root =
  let root = fresh (Dom.name doc_root) in
  let rec walk snode (n : Dom.node) =
    snode.extent_rev <- n :: snode.extent_rev;
    snode.count <- snode.count + 1;
    List.iter
      (fun (c : Dom.node) ->
        if Dom.is_element c then begin
          let tag = Dom.name c in
          let child =
            match Hashtbl.find_opt snode.children tag with
            | Some s -> s
            | None ->
                let s = fresh tag in
                Hashtbl.replace snode.children tag s;
                snode.child_order <- tag :: snode.child_order;
                s
          in
          walk child c
        end)
      (Dom.children n)
  in
  walk root doc_root;
  { root }

let rec count_nodes s =
  Hashtbl.fold (fun _ c acc -> acc + count_nodes c) s.children 1

let path_count t = count_nodes t.root

let find t path =
  match path with
  | [] -> None
  | first :: rest ->
      if not (String.equal first t.root.tag) then None
      else
        let rec go s = function
          | [] -> Some s
          | tag :: rest -> (
              match Hashtbl.find_opt s.children tag with
              | Some c -> go c rest
              | None -> None)
        in
        go t.root rest

let cardinality t path = match find t path with Some s -> s.count | None -> 0

let extent t path =
  match find t path with
  | None -> []
  | Some s ->
      List.rev s.extent_rev
      |> List.stable_sort (fun (a : Dom.node) b -> compare a.Dom.order b.Dom.order)

let exists t path = find t path <> None

let paths t =
  let acc = ref [] in
  let rec go prefix s =
    let path = List.rev (s.tag :: prefix) in
    acc := (path, s.count) :: !acc;
    List.iter
      (fun tag -> go (s.tag :: prefix) (Hashtbl.find s.children tag))
      (List.rev s.child_order)
  in
  go [] t.root;
  List.rev !acc

let descendant_cardinality t tag =
  let rec go s =
    let self = if String.equal s.tag tag then s.count else 0 in
    Hashtbl.fold (fun _ c acc -> acc + go c) s.children self
  in
  go t.root

let pp fmt t =
  let rec go depth s =
    Format.fprintf fmt "%s%s (%d)@\n" (String.make (2 * depth) ' ') s.tag s.count;
    List.iter (fun tag -> go (depth + 1) (Hashtbl.find s.children tag)) (List.rev s.child_order)
  in
  go 0 t.root
