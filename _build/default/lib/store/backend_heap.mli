(** System A: a relational store with a single-relation "edge model"
    mapping — "System A basically stores all XML data on one big heap,
    i.e., only a single relation" (paper, Section 7).

    One [nodes] relation holds every element and text node (row id =
    node id = document pre-order), one [attributes] relation holds all
    attribute triples.  Navigation runs through hash indexes on the parent
    and owner columns; an index over [id] attributes serves Q1-style
    lookups.  The catalog is tiny, so query compilation touches little
    metadata (Table 2), but data access pays relational indirection on
    every step, and reconstruction queries (Q10, Q13) must reassemble
    subtrees row by row — the behaviour behind A's pathological Q10 time
    in Table 3. *)

include Xmark_xquery.Store_sig.S with type node = int

val load_string : string -> t
(** Bulkload from serialized XML (streamed through the SAX parser; index
    construction included, as in Table 1). *)

val load_dom : Xmark_xml.Dom.node -> t

val catalog : t -> Xmark_relational.Catalog.t
(** The system catalog, exposing metadata-access counters. *)
