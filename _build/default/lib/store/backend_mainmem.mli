(** Main-memory DOM backends — the paper's Systems D, E and F.

    The three systems share one physical representation (a pointer-based
    tree) and differ in their access paths, which is how the paper
    describes them: "Systems D to F are main-memory based and only come
    with heuristic optimizers", with System D additionally keeping "a
    detailed structural summary of the database" that makes the regular
    path expression queries Q6/Q7 "surprisingly fast".

    - [`Full] (System D): structural summary — per-tag extents with
      subtree intervals for index-assisted descendant steps — plus an ID
      index and a lazily-built per-tag keyword index serving
      [keyword_search] (the full-text access path of Section 6.9).
    - [`Id_only] (System E): ID index, no structural summary.
    - [`Plain] (System F): pure navigation. *)

type level = [ `Full | `Id_only | `Plain ]

include Xmark_xquery.Store_sig.S with type node = Xmark_xml.Dom.node

val create : level:level -> Xmark_xml.Dom.node -> t
(** Load a parsed document.  The DOM must be document-order indexed
    (which {!Xmark_xml.Sax.parse_dom} guarantees); index construction cost
    is part of bulkload, as in Table 1. *)

val of_string : level:level -> string -> t
(** Parse and load. *)

val level : t -> level

val dom_root : t -> Xmark_xml.Dom.node
