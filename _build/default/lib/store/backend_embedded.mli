(** System G: the embedded query processor.

    The paper's second platform category: "query processors that are
    intended to serve as embedded query processors in programming
    languages and aim at small to medium sized documents" (Section 7).
    There is no database: the document is kept in its serialized form and
    parsed again for every query execution, which is what gives Figure 4
    its flat, size-dominated profile — on the small document "no query
    took longer than 5 seconds but none was faster than 2.5 seconds".

    A session wraps the document text; each {!session} call re-parses and
    yields a plain navigational store (no indexes, like System F), whose
    lifetime is one query. *)

type t

val load : string -> t
(** Keep the serialized document; cheap ("bulkload" for an embedded
    processor is nothing but retaining the input). *)

val load_dom : Xmark_xml.Dom.node -> t
(** Serializes the tree first — an embedded processor starts from text. *)

val document : t -> string

val bytes : t -> int

val session : t -> Backend_mainmem.t
(** Parse the document and return a store valid for one query execution.
    The parse is intentional per-call work: it is System G's constant
    overhead. *)

val description : t -> string
