(* The relational path compiler must return exactly the nodes the
   navigational evaluator returns — a second differential check, this time
   between System A's two execution strategies (algebraic plan vs
   navigation). *)

module HA = Xmark_store.Backend_heap
module PC = Xmark_store.Path_compiler
module EvA = Xmark_xquery.Eval.Make (HA)
module Parser = Xmark_xquery.Parser
module Ast = Xmark_xquery.Ast

let doc = lazy (Xmark_xmlgen.Generator.to_string ~factor:0.003 ())

let store = lazy (HA.load_string (Lazy.force doc))

let steps_of src =
  match Parser.parse_expr src with
  | Ast.Path (Ast.Root, steps) -> steps
  | _ -> Alcotest.failf "%s is not an absolute path" src

let navigational src =
  let s = Lazy.force store in
  EvA.eval_string s src
  |> List.filter_map (function EvA.N id -> Some id | _ -> None)

let compiled src =
  let s = Lazy.force store in
  PC.execute (PC.compile s (steps_of src))

let paths_under_test =
  [
    "/site";
    "/site/people/person";
    "/site/regions/europe/item";
    "/site//item";
    "/site//keyword";
    "//person";
    "/site/open_auctions/open_auction/bidder/increase";
    {|/site/people/person[@id = "person0"]|};
    {|/site//item[@featured = "yes"]|};
    "/site/*";
    "/site/regions/*/item";
    "/nothing/here";
  ]

let test_matches_navigation () =
  List.iter
    (fun src ->
      Alcotest.(check (list int)) src (navigational src) (compiled src))
    paths_under_test

let test_join_count () =
  let s = Lazy.force store in
  let plan = PC.compile s (steps_of "/site/people/person") in
  (* one join per step: the paper's point about path expressions on
     relational back-ends *)
  Alcotest.(check int) "three joins for three steps" 3 (PC.join_count plan);
  let plan2 = PC.compile s (steps_of {|/site/people/person[@id = "person0"]|}) in
  Alcotest.(check int) "predicate adds a join" 4 (PC.join_count plan2)

let test_explain () =
  let s = Lazy.force store in
  let text = PC.explain (PC.compile s (steps_of {|/site/people/person[@id = "person0"]|})) in
  List.iter
    (fun needle ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) ("explain mentions " ^ needle) true (contains text needle))
    [ "DOC"; "tag='site'"; "tag='people'"; "tag='person'"; "attributes"; "value='person0'" ]

let test_unsupported () =
  let s = Lazy.force store in
  let expect_unsupported src =
    match PC.compile s (steps_of src) with
    | exception PC.Unsupported _ -> ()
    | _ -> Alcotest.failf "%s should be unsupported" src
  in
  expect_unsupported "/site/people/person/name/text()";
  expect_unsupported "/site/people/person[1]";
  expect_unsupported "/site/people/person[homepage]";
  Alcotest.(check bool) "compile_expr returns None for FLWOR" true
    (PC.compile_expr s (Parser.parse_expr "for $x in /site return $x") = None);
  Alcotest.(check bool) "compile_expr handles supported path" true
    (PC.compile_expr s (Parser.parse_expr "/site//item") <> None)

let test_document_order () =
  List.iter
    (fun src ->
      let ids = compiled src in
      Alcotest.(check bool) (src ^ " sorted") true (List.sort compare ids = ids))
    paths_under_test

(* --- System B compiler: same contract over the fragmenting mapping ----------- *)

module SB = Xmark_store.Backend_shredded
module PB = Xmark_store.Path_compiler_b
module EvB = Xmark_xquery.Eval.Make (SB)

let store_b = lazy (SB.load_string (Lazy.force doc))

let navigational_b src =
  let s = Lazy.force store_b in
  EvB.eval_string s src |> List.filter_map (function EvB.N id -> Some id | _ -> None)

let compiled_b src =
  let s = Lazy.force store_b in
  PB.execute (PB.compile s (steps_of src))

let test_b_matches_navigation () =
  List.iter
    (fun src -> Alcotest.(check (list int)) src (navigational_b src) (compiled_b src))
    paths_under_test

let test_b_relations_touched () =
  let s = Lazy.force store_b in
  (* a fully specified path touches one relation per step... *)
  let precise = PB.compile s (steps_of "/site/people/person") in
  Alcotest.(check int) "one relation per named step" 3 (PB.relations_touched precise);
  (* ...while a descendant step pays for the whole catalog *)
  let fuzzy = PB.compile s (steps_of "/site//item") in
  Alcotest.(check bool) "descendant step touches many relations" true
    (PB.relations_touched fuzzy > 20)

let test_b_same_ids_as_a () =
  (* both relational mappings number nodes in document pre-order, so the
     two compilers must return identical id lists *)
  List.iter
    (fun src -> Alcotest.(check (list int)) src (compiled src) (compiled_b src))
    paths_under_test

let () =
  Alcotest.run "path-compiler"
    [
      ( "compiler",
        [
          Alcotest.test_case "matches navigation" `Quick test_matches_navigation;
          Alcotest.test_case "join count" `Quick test_join_count;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "unsupported fragments" `Quick test_unsupported;
          Alcotest.test_case "document order" `Quick test_document_order;
        ] );
      ( "system-b",
        [
          Alcotest.test_case "matches navigation" `Quick test_b_matches_navigation;
          Alcotest.test_case "relations touched" `Quick test_b_relations_touched;
          Alcotest.test_case "agrees with system A compiler" `Quick test_b_same_ids_as_a;
        ] );
    ]
