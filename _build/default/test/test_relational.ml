module R = Xmark_relational
open R

let v_i i = Value.Int i
let v_s s = Value.Str s
let v_f f = Value.Num f

let mk_table name cols rows =
  let t = Table.create ~name ~cols in
  List.iter (fun r -> Table.append t (Array.of_list r)) rows;
  t

(* --- values ---------------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "int vs num merge" true (Value.compare (v_i 2) (v_f 2.0) = 0);
  Alcotest.(check bool) "num order" true (Value.compare (v_f 1.0) (v_f 2.0) < 0);
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (v_i 0) < 0);
  Alcotest.(check bool) "str after num" true (Value.compare (v_i 5) (v_s "a") < 0);
  Alcotest.(check bool) "str order" true (Value.compare (v_s "a") (v_s "b") < 0)

let test_value_cast () =
  Alcotest.(check (float 0.001)) "str cast" 42.5 (Value.to_float (v_s " 42.5 "));
  Alcotest.(check bool) "bad cast is nan" true (Float.is_nan (Value.to_float (v_s "oops")));
  Alcotest.(check bool) "null is nan" true (Float.is_nan (Value.to_float Value.Null))

let test_value_to_string () =
  Alcotest.(check string) "int" "7" (Value.to_string (v_i 7));
  Alcotest.(check string) "whole float" "40" (Value.to_string (v_f 40.0));
  Alcotest.(check string) "null empty" "" (Value.to_string Value.Null)

(* --- tables ---------------------------------------------------------------- *)

let test_table_basics () =
  let t = mk_table "t" [ "a"; "b" ] [ [ v_i 1; v_s "x" ]; [ v_i 2; v_s "y" ] ] in
  Alcotest.(check int) "count" 2 (Table.row_count t);
  Alcotest.(check int) "col index" 1 (Table.col_index t "b");
  Alcotest.(check bool) "get" true ((Table.get t 1).(1) = v_s "y");
  (match Table.col_index t "zz" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown column");
  match Table.append t [| v_i 1 |] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "arity mismatch"

let test_table_append_after_seal () =
  let t = mk_table "t" [ "a" ] [ [ v_i 1 ] ] in
  ignore (Table.rows t);
  Table.append t [| v_i 2 |];
  Alcotest.(check int) "reseal" 2 (Array.length (Table.rows t));
  Alcotest.(check bool) "order kept" true ((Table.get t 1).(0) = v_i 2)

let test_table_fold_order () =
  let t = mk_table "t" [ "a" ] [ [ v_i 3 ]; [ v_i 1 ]; [ v_i 2 ] ] in
  let order = Table.fold (fun acc _ r -> r.(0) :: acc) [] t in
  Alcotest.(check bool) "load order" true (List.rev order = [ v_i 3; v_i 1; v_i 2 ])

(* --- indexes ---------------------------------------------------------------- *)

let test_index_lookup () =
  let t =
    mk_table "t" [ "k"; "v" ]
      [ [ v_s "a"; v_i 1 ]; [ v_s "b"; v_i 2 ]; [ v_s "a"; v_i 3 ] ]
  in
  let idx = Index.build t "k" in
  Alcotest.(check (list int)) "rows for a" [ 0; 2 ] (Index.lookup idx (v_s "a"));
  Alcotest.(check (list int)) "rows for b" [ 1 ] (Index.lookup idx (v_s "b"));
  Alcotest.(check (list int)) "missing" [] (Index.lookup idx (v_s "zz"));
  Alcotest.(check (option int)) "unique" (Some 0) (Index.unique idx (v_s "a"));
  Alcotest.(check int) "distinct keys" 2 (Index.size idx)

let test_index_keyed () =
  let t = mk_table "t" [ "x" ] [ [ v_i 10 ]; [ v_i 11 ]; [ v_i 12 ] ] in
  let idx = Index.build_keyed t (fun r -> v_i (Value.to_float r.(0) |> int_of_float |> fun x -> x mod 2)) in
  Alcotest.(check (list int)) "evens" [ 0; 2 ] (Index.lookup idx (v_i 0))

(* --- plans ---------------------------------------------------------------- *)

let people =
  mk_table "people" [ "id"; "name"; "age" ]
    [
      [ v_i 1; v_s "ann"; v_i 30 ];
      [ v_i 2; v_s "bob"; v_i 20 ];
      [ v_i 3; v_s "cat"; v_i 40 ];
      [ v_i 4; v_s "dan"; v_i 20 ];
    ]

let orders =
  mk_table "orders" [ "person"; "amount" ]
    [
      [ v_i 1; v_f 10.0 ];
      [ v_i 1; v_f 20.0 ];
      [ v_i 3; v_f 5.0 ];
      [ v_i 9; v_f 99.0 ];
    ]

let test_filter_project () =
  let r = Plan.of_table people in
  let adults = Plan.filter (fun row -> Value.to_float row.(2) >= 30.0) r in
  Alcotest.(check int) "two adults" 2 (Plan.count adults);
  let names = Plan.project adults [ ("name", fun row -> row.(1)) ] in
  Alcotest.(check bool) "projected" true
    (Array.to_list names.Plan.rows = [ [| v_s "ann" |]; [| v_s "cat" |] ])

let test_hash_join () =
  let j =
    Plan.hash_join ~left:(Plan.of_table people) ~right:(Plan.of_table orders)
      ~lkey:(fun r -> r.(0))
      ~rkey:(fun r -> r.(0))
  in
  Alcotest.(check int) "3 matches" 3 (Plan.count j);
  (* left order preserved, right order within key preserved *)
  let amounts = Array.to_list (Array.map (fun r -> r.(4)) j.Plan.rows) in
  Alcotest.(check bool) "amounts" true (amounts = [ v_f 10.0; v_f 20.0; v_f 5.0 ])

let test_hash_join_null_keys () =
  let l = mk_table "l" [ "k" ] [ [ Value.Null ]; [ v_i 1 ] ] in
  let r = mk_table "r" [ "k" ] [ [ Value.Null ]; [ v_i 1 ] ] in
  let j =
    Plan.hash_join ~left:(Plan.of_table l) ~right:(Plan.of_table r)
      ~lkey:(fun x -> x.(0))
      ~rkey:(fun x -> x.(0))
  in
  Alcotest.(check int) "nulls never join" 1 (Plan.count j)

let test_left_outer_join () =
  let j =
    Plan.left_outer_hash_join ~left:(Plan.of_table people) ~right:(Plan.of_table orders)
      ~lkey:(fun r -> r.(0))
      ~rkey:(fun r -> r.(0))
  in
  (* ann x2, bob null, cat x1, dan null *)
  Alcotest.(check int) "5 rows" 5 (Plan.count j);
  let bob = j.Plan.rows.(2) in
  Alcotest.(check bool) "bob padded with nulls" true (bob.(3) = Value.Null && bob.(4) = Value.Null)

let test_theta_join () =
  let j =
    Plan.theta_join ~left:(Plan.of_table people) ~right:(Plan.of_table orders)
      ~pred:(fun l r -> Value.to_float l.(2) > 2.0 *. Value.to_float r.(1))
  in
  (* age > 2*amount: ann(30): 10 yes, 20 no, 5 yes, 99 no = 2; bob(20): 10? 20>20 no, 5 yes, = 1;
     cat(40): 10 yes, 20 no wait 40>40 no, 5 yes = 2; dan(20): same as bob = 1 *)
  Alcotest.(check int) "theta matches" 6 (Plan.count j)

let test_sort_stable () =
  let r = Plan.of_table people in
  let sorted = Plan.sort r ~cmp:(fun a b -> Value.compare a.(2) b.(2)) in
  let names = Array.to_list (Array.map (fun row -> Value.to_string row.(1)) sorted.Plan.rows) in
  Alcotest.(check (list string)) "stable by age" [ "bob"; "dan"; "ann"; "cat" ] names

let test_group () =
  let g =
    Plan.group (Plan.of_table orders)
      ~key:(fun r -> r.(0))
      ~init:0
      ~step:(fun acc _ -> acc + 1)
      ~finish:(fun k n -> [| k; v_i n |])
  in
  Alcotest.(check int) "three groups" 3 (Plan.count g);
  (* first-occurrence order *)
  let keys = Array.to_list (Array.map (fun r -> r.(0)) g.Plan.rows) in
  Alcotest.(check bool) "group order" true (keys = [ v_i 1; v_i 3; v_i 9 ]);
  Alcotest.(check bool) "counts" true (g.Plan.rows.(0).(1) = v_i 2)

let test_distinct () =
  let d = Plan.distinct (Plan.of_table orders) ~key:(fun r -> r.(0)) in
  Alcotest.(check int) "three distinct persons" 3 (Plan.count d)

let test_difference () =
  let d =
    Plan.difference (Plan.of_table people) (Plan.of_table orders) ~key:(fun r -> r.(0))
  in
  (* people with no orders: bob(2), dan(4) *)
  Alcotest.(check int) "two" 2 (Plan.count d);
  Alcotest.(check bool) "names" true
    (Array.to_list (Array.map (fun r -> r.(1)) d.Plan.rows) = [ v_s "bob"; v_s "dan" ])

(* --- catalog ---------------------------------------------------------------- *)

let test_catalog () =
  let cat = Catalog.create () in
  Catalog.register cat people;
  Catalog.register cat orders;
  Alcotest.(check int) "two tables" 2 (Catalog.table_count cat);
  (match Catalog.register cat people with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration");
  Catalog.reset_counters cat;
  Alcotest.(check bool) "lookup hit" true (Catalog.lookup cat "orders" <> None);
  Alcotest.(check int) "accesses = entries scanned" 2 (Catalog.metadata_accesses cat);
  Alcotest.(check bool) "lookup miss" true (Catalog.lookup cat "zz" = None);
  Alcotest.(check int) "miss scans all" 4 (Catalog.metadata_accesses cat);
  Alcotest.(check bool) "byte size positive" true (Catalog.byte_size cat > 0)

(* --- property: hash join agrees with nested loop --------------------------- *)

let arb_pairs =
  QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_bound 10) (int_bound 100)))

let prop_join_equiv_nested_loop =
  QCheck.Test.make ~name:"hash join = nested loop equi-join" ~count:200
    (QCheck.pair arb_pairs arb_pairs)
    (fun (ls, rs) ->
      let tbl name rows =
        mk_table name [ "k"; "v" ] (List.map (fun (k, v) -> [ v_i k; v_i v ]) rows)
      in
      let l = Plan.of_table (tbl "l" ls) and r = Plan.of_table (tbl "r" rs) in
      let viahash =
        Plan.hash_join ~left:l ~right:r ~lkey:(fun x -> x.(0)) ~rkey:(fun x -> x.(0))
      in
      let vianested =
        Plan.theta_join ~left:l ~right:r ~pred:(fun a b -> Value.equal a.(0) b.(0))
      in
      let norm rel =
        Array.to_list rel.Plan.rows |> List.map Array.to_list |> List.sort compare
      in
      norm viahash = norm vianested)

let prop_distinct_count =
  QCheck.Test.make ~name:"distinct count = number of distinct keys" ~count:200 arb_pairs
    (fun rows ->
      let t = mk_table "t" [ "k"; "v" ] (List.map (fun (k, v) -> [ v_i k; v_i v ]) rows) in
      let d = Plan.distinct (Plan.of_table t) ~key:(fun r -> r.(0)) in
      Plan.count d = List.length (List.sort_uniq compare (List.map fst rows)))

(* --- B+-tree ordered index ---------------------------------------------------- *)

let test_btree_basics () =
  let t = Btree.create ~branching:4 () in
  List.iteri (fun i k -> Btree.insert t (v_i k) i) [ 5; 3; 9; 1; 7; 3 ];
  Alcotest.(check int) "cardinality" 6 (Btree.cardinality t);
  Alcotest.(check (list int)) "lookup dup key keeps order" [ 1; 5 ] (Btree.lookup t (v_i 3));
  Alcotest.(check (list int)) "lookup miss" [] (Btree.lookup t (v_i 4));
  Alcotest.(check bool) "min" true (Btree.min_key t = Some (v_i 1));
  Alcotest.(check bool) "max" true (Btree.max_key t = Some (v_i 9))

let test_btree_range () =
  let t = Btree.create ~branching:4 () in
  List.iteri (fun i k -> Btree.insert t (v_i k) i) [ 10; 20; 30; 40; 50 ];
  Alcotest.(check (list int)) "closed range" [ 1; 2; 3 ]
    (Btree.range ~lower:(v_i 20, true) ~upper:(v_i 40, true) t);
  Alcotest.(check (list int)) "open range" [ 2 ]
    (Btree.range ~lower:(v_i 20, false) ~upper:(v_i 40, false) t);
  Alcotest.(check (list int)) "no lower" [ 0; 1 ] (Btree.range ~upper:(v_i 20, true) t);
  Alcotest.(check (list int)) "no upper" [ 3; 4 ] (Btree.range ~lower:(v_i 40, true) t);
  Alcotest.(check (list int)) "unbounded = all" [ 0; 1; 2; 3; 4 ] (Btree.range t)

let test_btree_build_and_iter () =
  let t = Btree.build ~branching:4 people "age" in
  let collected = ref [] in
  Btree.iter (fun k v -> collected := (Value.to_float k, v) :: !collected) t;
  let collected = List.rev !collected in
  Alcotest.(check int) "all rows" 4 (List.length collected);
  let keys = List.map fst collected in
  Alcotest.(check bool) "key order" true (List.sort compare keys = keys)

let arb_entries =
  QCheck.(list_of_size Gen.(int_range 0 300) (int_bound 60))

let prop_btree_matches_model =
  QCheck.Test.make ~name:"btree lookup/range agree with a sorted-list model" ~count:150
    arb_entries
    (fun keys ->
      let t = Btree.create ~branching:4 () in
      List.iteri (fun i k -> Btree.insert t (v_i k) i) keys;
      let model = List.mapi (fun i k -> (k, i)) keys in
      (* lookups *)
      List.for_all
        (fun probe ->
          let expected = List.filter_map (fun (k, i) -> if k = probe then Some i else None) model in
          Btree.lookup t (v_i probe) = expected)
        [ 0; 7; 30; 60 ]
      && (* range [10, 40) in key order, stable within keys *)
      (let expected =
         List.stable_sort
           (fun (k1, _) (k2, _) -> compare k1 k2)
           (List.filter (fun (k, _) -> k >= 10 && k < 40) model)
         |> List.map snd
       in
       Btree.range ~lower:(v_i 10, true) ~upper:(v_i 40, false) t = expected)
      && Btree.cardinality t = List.length keys)

let prop_btree_depth_logarithmic =
  QCheck.Test.make ~name:"btree depth stays logarithmic" ~count:20
    QCheck.(int_range 100 2000)
    (fun n ->
      let t = Btree.create ~branching:8 () in
      for i = 0 to n - 1 do
        Btree.insert t (v_i i) i
      done;
      (* height of an 8-way tree over n distinct keys *)
      Btree.depth t <= 2 + int_of_float (log (float_of_int n) /. log 4.0))

(* --- volcano iterators ---------------------------------------------------------- *)

let test_iter_basic_pipeline () =
  let it =
    Iter.of_table people
    |> Iter.filter (fun r -> Value.to_float r.(2) >= 20.0)
    |> Iter.project (fun r -> [| r.(1) |])
  in
  Alcotest.(check int) "all pass" 4 (Iter.count it)

let test_iter_limit_pipelines () =
  (* limit must stop pulling from the scan: observable via the counter *)
  let scan = Iter.of_table people in
  let limited = Iter.limit 2 (Iter.filter (fun _ -> true) scan) in
  Alcotest.(check int) "two rows out" 2 (List.length (Iter.to_list limited));
  Alcotest.(check bool) "scan pulled at most 3" true (Iter.pulled scan <= 3)

let test_iter_hash_join_matches_plan () =
  let via_plan =
    Plan.hash_join ~left:(Plan.of_table orders) ~right:(Plan.of_table people)
      ~lkey:(fun r -> r.(0))
      ~rkey:(fun r -> r.(0))
  in
  let via_iter =
    Iter.hash_join ~build:(Iter.of_table people) ~probe:(Iter.of_table orders)
      ~bkey:(fun r -> r.(0))
      ~pkey:(fun r -> r.(0))
  in
  Alcotest.(check bool) "same rows" true
    (Array.to_list via_plan.Plan.rows = Iter.to_list via_iter)

let test_iter_join_is_lazy_on_probe () =
  let probe = Iter.of_table orders in
  let joined =
    Iter.hash_join ~build:(Iter.of_table people) ~probe
      ~bkey:(fun r -> r.(0))
      ~pkey:(fun r -> r.(0))
  in
  ignore (Iter.next joined);
  Alcotest.(check bool) "probe side streamed" true (Iter.pulled probe <= 2)

let test_iter_index_nested_loop () =
  let idx = Index.build orders "person" in
  let it =
    Iter.index_nested_loop ~outer:(Iter.of_table people)
      ~lookup:(fun prow -> Index.lookup_rows idx orders prow.(0))
  in
  Alcotest.(check int) "three matches" 3 (Iter.count it)

let test_iter_of_list_and_to_rel () =
  let it = Iter.of_list [ [| v_i 1 |]; [| v_i 2 |] ] in
  let rel = Iter.to_rel ~cols:[| "x" |] it in
  Alcotest.(check int) "two rows" 2 (Plan.count rel)

let prop_iter_filter_equals_plan_filter =
  QCheck.Test.make ~name:"iter filter = plan filter" ~count:150 arb_entries (fun rows ->
      let t = mk_table "t" [ "k"; "v" ] (List.mapi (fun i k -> [ v_i k; v_i i ]) rows) in
      let pred r = Value.to_float r.(0) >= 30.0 in
      let via_plan = Array.to_list (Plan.filter pred (Plan.of_table t)).Plan.rows in
      let via_iter = Iter.to_list (Iter.filter pred (Iter.of_table t)) in
      via_plan = via_iter)

let prop_iter_join_equals_plan_join =
  QCheck.Test.make ~name:"iter hash join = plan hash join" ~count:100
    (QCheck.pair arb_entries arb_entries)
    (fun (ls, rs) ->
      let lt = mk_table "l" [ "k" ] (List.map (fun k -> [ v_i (k mod 10) ]) ls) in
      let rt = mk_table "r" [ "k" ] (List.map (fun k -> [ v_i (k mod 10) ]) rs) in
      let via_plan =
        Plan.hash_join ~left:(Plan.of_table lt) ~right:(Plan.of_table rt)
          ~lkey:(fun r -> r.(0)) ~rkey:(fun r -> r.(0))
      in
      let via_iter =
        Iter.hash_join ~build:(Iter.of_table rt) ~probe:(Iter.of_table lt)
          ~bkey:(fun r -> r.(0)) ~pkey:(fun r -> r.(0))
      in
      Array.to_list via_plan.Plan.rows = Iter.to_list via_iter)

let () =
  Alcotest.run "relational"
    [
      ( "values",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "cast" `Quick test_value_cast;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
        ] );
      ( "tables",
        [
          Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "append after seal" `Quick test_table_append_after_seal;
          Alcotest.test_case "fold order" `Quick test_table_fold_order;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "lookup" `Quick test_index_lookup;
          Alcotest.test_case "keyed" `Quick test_index_keyed;
        ] );
      ( "plans",
        [
          Alcotest.test_case "filter/project" `Quick test_filter_project;
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "null keys" `Quick test_hash_join_null_keys;
          Alcotest.test_case "left outer join" `Quick test_left_outer_join;
          Alcotest.test_case "theta join" `Quick test_theta_join;
          Alcotest.test_case "sort stable" `Quick test_sort_stable;
          Alcotest.test_case "group" `Quick test_group;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "difference" `Quick test_difference;
        ] );
      ("catalog", [ Alcotest.test_case "catalog" `Quick test_catalog ]);
      ( "iterators",
        [
          Alcotest.test_case "basic pipeline" `Quick test_iter_basic_pipeline;
          Alcotest.test_case "limit pipelines" `Quick test_iter_limit_pipelines;
          Alcotest.test_case "hash join = plan" `Quick test_iter_hash_join_matches_plan;
          Alcotest.test_case "lazy probe" `Quick test_iter_join_is_lazy_on_probe;
          Alcotest.test_case "index nested loop" `Quick test_iter_index_nested_loop;
          Alcotest.test_case "of_list / to_rel" `Quick test_iter_of_list_and_to_rel;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basics" `Quick test_btree_basics;
          Alcotest.test_case "range" `Quick test_btree_range;
          Alcotest.test_case "build and iter" `Quick test_btree_build_and_iter;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_join_equiv_nested_loop; prop_distinct_count; prop_btree_matches_model;
            prop_btree_depth_logarithmic; prop_iter_filter_equals_plan_filter;
            prop_iter_join_equals_plan_join ] );
    ]
