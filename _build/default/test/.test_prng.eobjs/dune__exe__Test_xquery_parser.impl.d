test/test_xquery_parser.ml: Alcotest List String Xmark_core Xmark_xquery
