test/test_summary_updates.mli:
