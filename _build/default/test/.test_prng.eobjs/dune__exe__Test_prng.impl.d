test/test_prng.ml: Alcotest Array Float Fun Int64 List Printf QCheck QCheck_alcotest Xmark_prng
