test/test_xquery_eval.mli:
