test/test_xquery_eval.ml: Alcotest List Printf Xmark_core Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
