test/test_store.ml: Alcotest Lazy List Printf Xmark_relational Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
