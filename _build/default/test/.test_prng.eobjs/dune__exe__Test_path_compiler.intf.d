test/test_path_compiler.mli:
