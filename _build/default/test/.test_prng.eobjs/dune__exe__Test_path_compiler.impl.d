test/test_path_compiler.ml: Alcotest Lazy List String Xmark_store Xmark_xmlgen Xmark_xquery
