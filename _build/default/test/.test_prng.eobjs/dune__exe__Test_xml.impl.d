test/test_xml.ml: Alcotest List QCheck QCheck_alcotest String Xmark_xml
