test/test_xquery_parser.mli:
