test/test_queries.ml: Alcotest Float Lazy List Printf String Xmark_core Xmark_xml Xmark_xmlgen
