test/test_relational.ml: Alcotest Array Btree Catalog Float Gen Index Iter List Plan QCheck QCheck_alcotest Table Value Xmark_relational
