test/test_differential.ml: Alcotest Float Fun Lazy List Printf QCheck QCheck_alcotest String Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
