test/test_summary_updates.ml: Alcotest Float Format Lazy List Printf String Xmark_core Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
