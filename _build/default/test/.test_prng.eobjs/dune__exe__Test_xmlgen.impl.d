test/test_xmlgen.ml: Alcotest Char Filename Float Format Hashtbl Lazy List Option Printf String Sys Unix Xmark_core Xmark_prng Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
