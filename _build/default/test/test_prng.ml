module Prng = Xmark_prng.Prng

let check = Alcotest.check

let test_determinism () =
  let a = Prng.create ~seed:42L () and b = Prng.create ~seed:42L () in
  for _ = 1 to 1000 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_changes_stream () =
  let a = Prng.create ~seed:1L () and b = Prng.create ~seed:2L () in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 5)

let test_copy_replays () =
  let g = Prng.create () in
  for _ = 1 to 17 do
    ignore (Prng.bits64 g)
  done;
  let h = Prng.copy g in
  let xs = List.init 50 (fun _ -> Prng.bits64 g) in
  let ys = List.init 50 (fun _ -> Prng.bits64 h) in
  check Alcotest.(list int64) "copy replays the stream" xs ys

let test_split_independent () =
  let g = Prng.create () in
  let h = Prng.split g in
  let xs = List.init 20 (fun _ -> Prng.bits64 g) in
  let ys = List.init 20 (fun _ -> Prng.bits64 h) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_range () =
  let g = Prng.create () in
  for _ = 1 to 10_000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_in_range () =
  let g = Prng.create () in
  for _ = 1 to 1000 do
    let v = Prng.int_in g 5 9 in
    Alcotest.(check bool) "5 <= v <= 9" true (v >= 5 && v <= 9)
  done

let test_int_uniformity () =
  let g = Prng.create () in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 10%%" i)
        true
        (abs (c - expected) < expected / 10))
    buckets

let test_float_range () =
  let g = Prng.create () in
  for _ = 1 to 10_000 do
    let v = Prng.float g 3.5 in
    Alcotest.(check bool) "0 <= v < 3.5" true (v >= 0.0 && v < 3.5)
  done

let test_chance_extremes () =
  let g = Prng.create () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Prng.chance g 1.0);
    Alcotest.(check bool) "p=0 always false" false (Prng.chance g 0.0)
  done

let test_exponential_mean () =
  let g = Prng.create () in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.exponential g ~mean:4.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4.0" true (Float.abs (mean -. 4.0) < 0.15)

let test_gaussian_moments () =
  let g = Prng.create () in
  let n = 50_000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.gaussian g ~mean:10.0 ~stdev:2.0 in
    sum := !sum +. v;
    sum2 := !sum2 +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 10" true (Float.abs (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stdev near 2" true (Float.abs (sqrt var -. 2.0) < 0.1)

let test_shuffle_permutes () =
  let g = Prng.create () in
  let a = Array.init 100 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 100 Fun.id) sorted

let test_zipf_probabilities () =
  let z = Prng.Zipf.create ~n:100 ~s:1.0 in
  let total = ref 0.0 in
  for r = 0 to 99 do
    let p = Prng.Zipf.probability z r in
    Alcotest.(check bool) "p > 0" true (p > 0.0);
    total := !total +. p
  done;
  Alcotest.(check bool) "probabilities sum to 1" true (Float.abs (!total -. 1.0) < 1e-9);
  Alcotest.(check bool) "rank 0 most likely" true
    (Prng.Zipf.probability z 0 > Prng.Zipf.probability z 1)

let test_zipf_sampling () =
  let z = Prng.Zipf.create ~n:50 ~s:1.0 in
  let g = Prng.create () in
  let counts = Array.make 50 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Prng.Zipf.sample z g in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 50);
    counts.(r) <- counts.(r) + 1
  done;
  (* empirical frequency of rank 0 should be near its probability *)
  let p0 = Prng.Zipf.probability z 0 in
  let f0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) "rank-0 frequency matches" true (Float.abs (f0 -. p0) < 0.01);
  Alcotest.(check bool) "monotone head" true (counts.(0) > counts.(5))

let test_permutation_bijective () =
  List.iter
    (fun n ->
      let g = Prng.create () in
      let p = Prng.Permutation.create g n in
      Alcotest.(check int) "size" n (Prng.Permutation.size p);
      let seen = Array.make n false in
      for i = 0 to n - 1 do
        let j = Prng.Permutation.apply p i in
        Alcotest.(check bool) "in range" true (j >= 0 && j < n);
        Alcotest.(check bool) (Printf.sprintf "image %d unique" j) false seen.(j);
        seen.(j) <- true
      done)
    [ 1; 2; 3; 7; 64; 1000; 21750 ]

let test_permutation_deterministic () =
  let p1 = Prng.Permutation.create (Prng.create ~seed:9L ()) 500 in
  let p2 = Prng.Permutation.create (Prng.create ~seed:9L ()) 500 in
  for i = 0 to 499 do
    Alcotest.(check int) "same image" (Prng.Permutation.apply p1 i) (Prng.Permutation.apply p2 i)
  done

(* property tests *)

let prop_int_bounds =
  QCheck.Test.make ~name:"int g n is within [0, n)" ~count:1000
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let g = Prng.create ~seed:(Int64.of_int seed) () in
      let v = Prng.int g n in
      v >= 0 && v < n)

let prop_permutation_roundtrip =
  QCheck.Test.make ~name:"permutation images are a permutation" ~count:100
    QCheck.(pair small_int (int_bound 200))
    (fun (seed, n) ->
      let n = n + 1 in
      let p = Prng.Permutation.create (Prng.create ~seed:(Int64.of_int seed) ()) n in
      let images = List.init n (Prng.Permutation.apply p) in
      List.sort_uniq compare images = List.init n Fun.id)

let () =
  Alcotest.run "prng"
    [
      ( "core",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed changes stream" `Quick test_seed_changes_stream;
          Alcotest.test_case "copy replays" `Quick test_copy_replays;
          Alcotest.test_case "split independent" `Quick test_split_independent;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int_in range" `Quick test_int_in_range;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          Alcotest.test_case "zipf probabilities" `Quick test_zipf_probabilities;
          Alcotest.test_case "zipf sampling" `Quick test_zipf_sampling;
        ] );
      ( "permutation",
        [
          Alcotest.test_case "bijective" `Quick test_permutation_bijective;
          Alcotest.test_case "deterministic" `Quick test_permutation_deterministic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_int_bounds; prop_permutation_roundtrip ] );
    ]
