(* Differential testing: random queries in the benchmark dialect are run
   against three different physical mappings (heap, shredded, main-memory)
   and must produce canonically identical results.  This is the paper's
   verification use case ("the benchmark document and the queries can aid
   in the verification of query processors") driven by generated
   queries. *)

module MM = Xmark_store.Backend_mainmem
module HA = Xmark_store.Backend_heap
module SB = Xmark_store.Backend_shredded
module EvM = Xmark_xquery.Eval.Make (MM)
module EvA = Xmark_xquery.Eval.Make (HA)
module EvB = Xmark_xquery.Eval.Make (SB)
module Canonical = Xmark_xml.Canonical

let doc = lazy (Xmark_xmlgen.Generator.to_string ~factor:0.002 ())

let store_m = lazy (MM.of_string ~level:`Full (Lazy.force doc))
let store_m_plain = lazy (MM.of_string ~level:`Plain (Lazy.force doc))
let store_a = lazy (HA.load_string (Lazy.force doc))
let store_b = lazy (SB.load_string (Lazy.force doc))

(* --- random query generation ------------------------------------------------ *)

let tags =
  [ "site"; "regions"; "europe"; "namerica"; "item"; "name"; "description"; "text";
    "keyword"; "people"; "person"; "emailaddress"; "homepage"; "profile"; "interest";
    "open_auctions"; "open_auction"; "bidder"; "increase"; "itemref"; "seller";
    "closed_auctions"; "closed_auction"; "price"; "buyer"; "annotation"; "category";
    "quantity"; "location"; "nonexistent_tag" ]

let attrs = [ "id"; "person"; "item"; "category"; "income"; "open_auction"; "featured" ]

let gen_step =
  QCheck.Gen.(
    let* sep = oneofl [ "/"; "//" ] in
    let* kind = int_bound 9 in
    if kind = 0 then
      let* a = oneofl attrs in
      return ("/@" ^ a)
    else if kind = 1 then return (sep ^ "*")
    else if kind = 2 then return "/text()"
    else
      let* tag = oneofl tags in
      let* pred = int_bound 9 in
      let p =
        if pred = 0 then "[1]"
        else if pred = 1 then "[last()]"
        else if pred = 2 then "[@id]"
        else ""
      in
      return (sep ^ tag ^ p))

let gen_path =
  QCheck.Gen.(
    let* n = int_range 1 5 in
    let* steps = list_size (return n) gen_step in
    (* attribute and text() steps terminate a path: drop anything after *)
    let rec clean acc = function
      | [] -> List.rev acc
      | s :: rest ->
          if String.length s > 1 && (s.[1] = '@' || s = "/text()") then List.rev (s :: acc)
          else clean (s :: acc) rest
    in
    return (String.concat "" (clean [] steps)))

let gen_query =
  QCheck.Gen.(
    let* path = gen_path in
    let* wrapper = int_bound 4 in
    return
      (match wrapper with
      | 0 -> Printf.sprintf "count(%s)" path
      | 1 -> Printf.sprintf "for $x in %s return <r>{$x}</r>" path
      | 2 -> Printf.sprintf "%s" path
      | 3 -> Printf.sprintf "sum(%s)" path
      | _ -> Printf.sprintf "if (empty(%s)) then \"none\" else count(%s)" path path))

let arb_query = QCheck.make ~print:Fun.id gen_query

(* --- the property ------------------------------------------------------------- *)

let canon_m q =
  let s = Lazy.force store_m in
  Canonical.of_nodes (EvM.result_to_dom s (EvM.eval_string s q))

let canon_m_plain q =
  let s = Lazy.force store_m_plain in
  Canonical.of_nodes (EvM.result_to_dom s (EvM.eval_string s q))

let canon_a q =
  let s = Lazy.force store_a in
  Canonical.of_nodes (EvA.result_to_dom s (EvA.eval_string s q))

let canon_b q =
  let s = Lazy.force store_b in
  Canonical.of_nodes (EvB.result_to_dom s (EvB.eval_string s q))

let prop_backends_agree =
  QCheck.Test.make ~name:"random queries agree across physical mappings" ~count:150 arb_query
    (fun q ->
      let reference = canon_m q in
      let ok which got =
        if String.equal got reference then true
        else
          QCheck.Test.fail_reportf "%s differs on %s:\nmainmem: %s\n%s: %s" which q
            (if String.length reference > 300 then String.sub reference 0 300 else reference)
            which
            (if String.length got > 300 then String.sub got 0 300 else got)
      in
      ok "heap" (canon_a q) && ok "shredded" (canon_b q) && ok "mainmem-plain" (canon_m_plain q))

let prop_count_nonnegative =
  QCheck.Test.make ~name:"count() of random paths is a natural number" ~count:100
    (QCheck.make ~print:Fun.id gen_path) (fun path ->
      let s = Lazy.force store_m in
      match EvM.eval_string s (Printf.sprintf "count(%s)" path) with
      | [ EvM.Num f ] -> Float.is_integer f && f >= 0.0
      | _ -> false)

let prop_idempotent_canonicalization =
  QCheck.Test.make ~name:"canonical result is stable across repeat evaluation" ~count:50 arb_query
    (fun q -> String.equal (canon_m q) (canon_m q))

(* --- optimizer differential: random join-shaped FLWORs ----------------------- *)

let gen_join_query =
  QCheck.Gen.(
    let* src = oneofl [ "/site/people/person"; "/site/closed_auctions/closed_auction";
                        "/site/open_auctions/open_auction"; "/site//item" ] in
    let* key = oneofl [ "@id"; "seller/@person"; "buyer/@person"; "itemref/@item"; "@featured" ] in
    let* probe_src = oneofl [ "/site/people/person"; "/site/closed_auctions/closed_auction" ] in
    let* probe_key = oneofl [ "@id"; "buyer/@person"; "seller/@person" ] in
    let* shape = int_bound 2 in
    return
      (match shape with
      | 0 ->
          Printf.sprintf
            "for $o in %s return <r>{count(for $x in %s where $x/%s = $o/%s return $x)}</r>"
            probe_src src key probe_key
      | 1 ->
          Printf.sprintf
            "for $o in %s return <r>{for $x in %s where $o/%s = $x/%s return $x/%s}</r>"
            probe_src src probe_key key key
      | _ ->
          Printf.sprintf
            "for $o in %s let $l := for $x in %s where $x/%s = $o/%s return $x return <r>{count($l)}</r>"
            probe_src src key probe_key))

let gen_ineq_query =
  QCheck.Gen.(
    let* op = oneofl [ ">"; "<"; ">="; "<=" ] in
    let* scale = oneofl [ "2"; "0.5"; "100" ] in
    return
      (Printf.sprintf
         "for $p in /site/people/person let $l := for $i in \
          /site/open_auctions/open_auction/initial where $p/profile/@income %s %s * \
          exactly-one($i/text()) return $i return <r>{count($l)}</r>"
         op scale))

let canon_opt ~optimize q =
  let s = Lazy.force store_m in
  Canonical.of_nodes (EvM.result_to_dom s (EvM.eval_string ~optimize s q))

let prop_optimizer_equijoins =
  QCheck.Test.make ~name:"optimizer preserves random equi-join queries" ~count:80
    (QCheck.make ~print:Fun.id gen_join_query)
    (fun q -> String.equal (canon_opt ~optimize:false q) (canon_opt ~optimize:true q))

let prop_optimizer_ineq =
  QCheck.Test.make ~name:"optimizer preserves random inequality counts" ~count:40
    (QCheck.make ~print:Fun.id gen_ineq_query)
    (fun q -> String.equal (canon_opt ~optimize:false q) (canon_opt ~optimize:true q))

let () =
  Alcotest.run "differential"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_backends_agree; prop_count_nonnegative; prop_idempotent_canonicalization;
            prop_optimizer_equijoins; prop_optimizer_ineq ] );
    ]
