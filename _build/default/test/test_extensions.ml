(* Extension features: online path validation (the paper's Section 7
   suggestion), the full-text access path (Section 6.9), and the
   experiment harness itself. *)

module MM = Xmark_store.Backend_mainmem
module E = Xmark_xquery.Eval.Make (MM)
module PC = Xmark_xquery.Pathcheck.Make (MM)
module Parser = Xmark_xquery.Parser
module Pathcheck = Xmark_xquery.Pathcheck
module Dom = Xmark_xml.Dom

let doc = lazy (Xmark_xmlgen.Generator.to_string ~factor:0.004 ())

let store_full = lazy (MM.of_string ~level:`Full (Lazy.force doc))

let store_plain = lazy (MM.of_string ~level:`Plain (Lazy.force doc))

(* --- path validation ---------------------------------------------------- *)

let warnings_of q = PC.check (Lazy.force store_full) (Parser.parse_query q)

let test_pathcheck_clean_queries () =
  (* none of the twenty official queries should warn *)
  List.iter
    (fun info ->
      let ws = PC.check (Lazy.force store_full) (Parser.parse_query info.Xmark_core.Queries.text) in
      Alcotest.(check int)
        (Printf.sprintf "Q%d warns" info.Xmark_core.Queries.number)
        0 (List.length ws))
    Xmark_core.Queries.all

let test_pathcheck_typo () =
  match warnings_of "/site/people/persn/name" with
  | [ w ] -> Alcotest.(check string) "offending tag" "persn" w.Pathcheck.tag
  | ws -> Alcotest.failf "expected one warning, got %d" (List.length ws)

let test_pathcheck_suggestion () =
  let ws =
    PC.check ~vocabulary:Xmark_xmlgen.Dtd.element_names (Lazy.force store_full)
      (Parser.parse_query "/site/people/persn")
  in
  (match ws with
  | [ w ] -> Alcotest.(check (option string)) "did you mean" (Some "person") w.Pathcheck.suggestion
  | _ -> Alcotest.fail "one warning expected");
  (* a tag far from everything gets no suggestion *)
  let ws2 =
    PC.check ~vocabulary:Xmark_xmlgen.Dtd.element_names (Lazy.force store_full)
      (Parser.parse_query "/site/zqxjwvk")
  in
  match ws2 with
  | [ w ] -> Alcotest.(check (option string)) "no suggestion" None w.Pathcheck.suggestion
  | _ -> Alcotest.fail "one warning expected"

let test_pathcheck_nested () =
  (* typos inside predicates and FLWOR clauses are found too *)
  let ws = warnings_of "for $p in /site/people/person[zzz] return $p/qqq" in
  Alcotest.(check (list string)) "both typos" [ "zzz"; "qqq" ]
    (List.map (fun w -> w.Pathcheck.tag) ws)

let test_pathcheck_dedup () =
  let ws = warnings_of "/site/typo/typo/typo" in
  Alcotest.(check int) "deduplicated" 1 (List.length ws)

let test_pathcheck_attributes_ignored () =
  (* attribute names are not element tags *)
  Alcotest.(check int) "no warning for attrs" 0
    (List.length (warnings_of "/site/people/person/@nonexistent"))

let test_pathcheck_needs_metadata () =
  (* a store without tag statistics cannot warn *)
  let ws = PC.check (Lazy.force store_plain) (Parser.parse_query "/site/typo") in
  Alcotest.(check int) "no stats, no warnings" 0 (List.length ws)

(* --- full-text search ----------------------------------------------------- *)

let manual_token_hits word =
  let d = Xmark_xml.Sax.parse_string (Lazy.force doc) in
  let is_alnum c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  in
  let has_token s =
    let n = String.length s and ln = String.length word in
    let rec scan i =
      if i >= n then false
      else if not (is_alnum s.[i]) then scan (i + 1)
      else begin
        let j = ref i in
        while !j < n && is_alnum s.[!j] do
          incr j
        done;
        (!j - i = ln && String.lowercase_ascii (String.sub s i ln) = word) || scan !j
      end
    in
    scan 0
  in
  List.length (List.filter (fun it -> has_token (Dom.string_value it)) (Dom.descendants_named d "item"))

let ft word store = E.eval_string (Lazy.force store) (Printf.sprintf {|ft-search("item", "%s")|} word)

let test_ft_index_matches_scan () =
  List.iter
    (fun word ->
      let via_index = ft word store_full in
      let via_scan = ft word store_plain in
      Alcotest.(check int)
        (word ^ ": index = scan")
        (List.length via_scan) (List.length via_index);
      Alcotest.(check int) (word ^ ": matches manual count") (manual_token_hits word)
        (List.length via_index))
    [ "gold"; "the"; "zzzznothing" ]

let test_ft_case_insensitive () =
  Alcotest.(check int) "case-insensitive" (List.length (ft "gold" store_full))
    (List.length (ft "GOLD" store_full))

let test_ft_document_order () =
  let store = Lazy.force store_full in
  match E.eval_string store {|ft-search("item", "the")|} with
  | items ->
      let orders =
        List.filter_map (function E.N n -> Some (MM.order store n) | _ -> None) items
      in
      Alcotest.(check bool) "has results" true (orders <> []);
      Alcotest.(check bool) "document order" true (List.sort compare orders = orders)

let test_ft_is_subset_of_contains () =
  (* token hits are a subset of substring hits *)
  let store = Lazy.force store_full in
  let tokens = List.length (E.eval_string store {|ft-search("item", "gold")|}) in
  let substr =
    List.length
      (E.eval_string store
         {|for $i in /site//item where contains(string($i), "gold") return $i|})
  in
  Alcotest.(check bool) "subset" true (tokens <= substr)

(* --- experiment harness --------------------------------------------------- *)

let test_table1_rows () =
  let rows = Xmark_core.Experiments.table1 ~factor:0.001 () in
  Alcotest.(check int) "six systems" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "positive size" true (r.Xmark_core.Experiments.t1_bytes > 0);
      Alcotest.(check bool) "positive time" true (r.Xmark_core.Experiments.t1_load_ms >= 0.0))
    rows

let test_fig3_linearity () =
  let rows = Xmark_core.Experiments.fig3 ~factors:[ 0.002; 0.004; 0.008 ] () in
  match rows with
  | [ a; b; c ] ->
      let r1 =
        float_of_int b.Xmark_core.Experiments.f3_bytes
        /. float_of_int a.Xmark_core.Experiments.f3_bytes
      in
      let r2 =
        float_of_int c.Xmark_core.Experiments.f3_bytes
        /. float_of_int b.Xmark_core.Experiments.f3_bytes
      in
      Alcotest.(check bool) "doubling factors ~doubles size" true
        (r1 > 1.6 && r1 < 2.4 && r2 > 1.6 && r2 < 2.4)
  | _ -> Alcotest.fail "three rows expected"

let test_table3_agreement () =
  let rows = Xmark_core.Experiments.table3 ~factor:0.002 ~queries:[ 1; 6; 17 ] () in
  List.iter
    (fun r -> Alcotest.(check bool) "systems agree" true r.Xmark_core.Experiments.t3_agree)
    rows

let test_fig4_covers_all_queries () =
  let rows = Xmark_core.Experiments.fig4 ~small:0.001 ~large:0.002 () in
  Alcotest.(check (list int)) "queries 1..20"
    (List.init 20 (fun i -> i + 1))
    (List.map (fun r -> r.Xmark_core.Experiments.f4_query) rows)

let test_loglog_slope () =
  let quadratic = List.map (fun x -> (x, 3.0 *. x *. x)) [ 1.0; 2.0; 4.0; 8.0 ] in
  let slope = Xmark_core.Experiments.loglog_slope quadratic in
  Alcotest.(check bool) "slope of x^2 is 2" true (Float.abs (slope -. 2.0) < 1e-6)

let test_fulltext_rows () =
  let rows = Xmark_core.Experiments.fulltext ~factor:0.002 ~words:[ "gold" ] () in
  match rows with
  | [ (_, _, warm, scan, _, _) ] ->
      Alcotest.(check bool) "warm index is no slower than scan" true (warm <= scan)
  | _ -> Alcotest.fail "one row expected"

(* --- verification, throughput, workload ------------------------------------- *)

let test_verification_agrees () =
  let reports =
    Xmark_core.Verification.compare_systems ~queries:[ 1; 5; 17 ] (Lazy.force doc)
  in
  Alcotest.(check int) "three reports" 3 (List.length reports);
  Alcotest.(check bool) "all agree" true (Xmark_core.Verification.all_agree reports);
  List.iter
    (fun r ->
      Alcotest.(check int) "seven systems" 7 (List.length r.Xmark_core.Verification.digests);
      let ds = List.map snd r.Xmark_core.Verification.digests in
      Alcotest.(check int) "identical digests" 1 (List.length (List.sort_uniq compare ds));
      Alcotest.(check bool) "no divergence" true (r.Xmark_core.Verification.divergence = None))
    reports

let test_verification_report_renders () =
  let reports = Xmark_core.Verification.compare_systems ~queries:[ 1 ] (Lazy.force doc) in
  let text = Format.asprintf "%a" Xmark_core.Verification.pp_report (List.hd reports) in
  Alcotest.(check bool) "mentions agree" true
    (String.length text > 10 &&
     let rec has i = i + 5 <= String.length text && (String.sub text i 5 = "agree" || has (i+1)) in
     has 0)

let test_throughput_positive () =
  let rows =
    Xmark_core.Experiments.throughput ~factor:0.001 ~budget_s:0.05
      ~systems:[ Xmark_core.Runner.D ] ()
  in
  match rows with
  | [ (_, qps) ] -> Alcotest.(check bool) "positive qps" true (qps > 0.0)
  | _ -> Alcotest.fail "one row expected"

let test_update_workload_runs () =
  let rows = Xmark_core.Experiments.update_workload ~factor:0.001 ~rounds:2 () in
  Alcotest.(check int) "two rounds" 2 (List.length rows);
  List.iter
    (fun (_, w, r, q) ->
      Alcotest.(check bool) "times non-negative" true (w >= 0.0 && r >= 0.0 && q >= 0.0))
    rows

let test_csv_exports () =
  let t1 = Xmark_core.Experiments.table1 ~factor:0.001 () in
  let csv = Xmark_core.Experiments.table1_to_csv t1 in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + six systems" 7 (List.length lines);
  Alcotest.(check string) "header" "system,bytes,load_ms,nodes" (List.hd lines);
  let f3 = Xmark_core.Experiments.fig3 ~factors:[ 0.001 ] () in
  let csv3 = Xmark_core.Experiments.fig3_to_csv f3 in
  Alcotest.(check int) "fig3 rows" 2 (List.length (String.split_on_char '\n' (String.trim csv3)))

let () =
  Alcotest.run "extensions"
    [
      ( "pathcheck",
        [
          Alcotest.test_case "benchmark queries are clean" `Quick test_pathcheck_clean_queries;
          Alcotest.test_case "typo detected" `Quick test_pathcheck_typo;
          Alcotest.test_case "did-you-mean suggestion" `Quick test_pathcheck_suggestion;
          Alcotest.test_case "nested expressions" `Quick test_pathcheck_nested;
          Alcotest.test_case "deduplication" `Quick test_pathcheck_dedup;
          Alcotest.test_case "attributes ignored" `Quick test_pathcheck_attributes_ignored;
          Alcotest.test_case "requires metadata" `Quick test_pathcheck_needs_metadata;
        ] );
      ( "fulltext",
        [
          Alcotest.test_case "index = scan = manual" `Quick test_ft_index_matches_scan;
          Alcotest.test_case "case-insensitive" `Quick test_ft_case_insensitive;
          Alcotest.test_case "document order" `Quick test_ft_document_order;
          Alcotest.test_case "subset of contains" `Quick test_ft_is_subset_of_contains;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 rows" `Quick test_table1_rows;
          Alcotest.test_case "fig3 linearity" `Quick test_fig3_linearity;
          Alcotest.test_case "table3 agreement" `Quick test_table3_agreement;
          Alcotest.test_case "fig4 coverage" `Quick test_fig4_covers_all_queries;
          Alcotest.test_case "loglog slope" `Quick test_loglog_slope;
          Alcotest.test_case "fulltext ablation" `Quick test_fulltext_rows;
          Alcotest.test_case "verification agrees" `Quick test_verification_agrees;
          Alcotest.test_case "verification report" `Quick test_verification_report_renders;
          Alcotest.test_case "throughput" `Quick test_throughput_positive;
          Alcotest.test_case "update workload" `Quick test_update_workload_runs;
          Alcotest.test_case "csv exports" `Quick test_csv_exports;
        ] );
    ]
