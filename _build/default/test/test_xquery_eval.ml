(* Unit semantics of the evaluator on small hand-written documents, run on
   the main-memory backend. *)

module MM = Xmark_store.Backend_mainmem
module E = Xmark_xquery.Eval.Make (MM)
module Dom = Xmark_xml.Dom
module Canonical = Xmark_xml.Canonical

let store_of src = MM.of_string ~level:`Full src

let doc =
  store_of
    {|<site>
  <people>
    <person id="p1"><name>Ann</name><age>30</age></person>
    <person id="p2"><name>Bob</name><age>20</age><homepage>hp</homepage></person>
    <person id="p3"><name>Cat</name><age>40</age></person>
  </people>
  <items>
    <item price="10.5"><name>hat</name><tag>x</tag><tag>y</tag></item>
    <item price="3"><name>pin</name></item>
  </items>
</site>|}

let run ?(store = doc) q = E.eval_string store q

let canon ?(store = doc) q = Canonical.of_nodes (E.result_to_dom store (run ~store q))

let check_canon ?store name expected q = Alcotest.(check string) name expected (canon ?store q)

let check_count name expected q = Alcotest.(check int) name expected (List.length (run q))

(* --- paths ----------------------------------------------------------------- *)

let test_child_paths () =
  check_count "three persons" 3 "/site/people/person";
  check_count "no such child" 0 "/site/nothing";
  check_canon "names" "<name>Ann</name>\n<name>Bob</name>\n<name>Cat</name>"
    "/site/people/person/name"

let test_descendant () =
  check_count "descendant names" 5 "//name";
  check_count "relative descendant" 2 "/site/items//name";
  check_count "descendant self excluded" 2 "//item"

let test_attributes () =
  check_canon "attr values" "10.5\n3" "/site/items/item/@price";
  check_count "missing attr" 0 "/site/items/item/@zz"

let test_text_step () =
  check_canon "text nodes" "Ann" {|/site/people/person[@id = "p1"]/name/text()|}

let test_wildcard () =
  check_count "star children" 2 "/site/*";
  check_count "all item children" 4 "/site/items/item/*"

let test_parent_axis () =
  check_count "parent" 1 {|/site/people/person[@id = "p1"]/..|};
  check_canon "parent name" "people" {|name(/site/people/person[@id = "p1"]/..)|}

let test_doc_order_dedup () =
  (* both parents collapse to distinct items; dedup happens across context *)
  check_count "union deduped" 2 "/site/items/item/name/.."

(* --- predicates -------------------------------------------------------------- *)

let test_positional () =
  check_canon "first" "<person id=\"p1\"><name>Ann</name><age>30</age></person>"
    "/site/people/person[1]";
  check_canon "last()" "Cat" "/site/people/person[last()]/name/text()";
  check_count "out of range" 0 "/site/people/person[9]"

let test_positional_per_context () =
  (* [1] applies per context node, not globally *)
  check_count "first tag of each item" 1 "/site/items/item/tag[1]"

let test_boolean_predicates () =
  check_count "with homepage" 1 "/site/people/person[homepage]";
  check_canon "age filter" "Cat" "/site/people/person[age > 35]/name/text()";
  check_count "attr comparison" 1 {|/site/items/item[@price = "3"]|}

let test_chained_predicates () =
  check_count "two predicates" 1 "/site/people/person[age > 15][2]"

(* --- comparisons, arithmetic ------------------------------------------------- *)

let test_general_comparison_existential () =
  (* any tag equals "y" *)
  check_canon "existential" "true" {|boolean(/site/items/item/tag = "y")|};
  check_canon "empty comparison false" "false" {|boolean(/site/nothing = "x")|}

let test_numeric_vs_string_comparison () =
  check_canon "numeric coercion" "true" "boolean(/site/items/item/@price > 10)";
  (* string compare when both untyped *)
  check_canon "string equality" "true" {|boolean(/site/people/person/name = "Bob")|}

let test_arithmetic () =
  check_canon "add" "3" "1 + 2";
  check_canon "precedence" "7" "1 + 2 * 3";
  check_canon "division" "2.5" "5 div 2";
  check_canon "mod" "1" "7 mod 2";
  check_canon "negation" "-4" "-(2 + 2)";
  check_canon "empty operand" "" "1 + /site/nothing";
  check_canon "string cast in arithmetic" "21" "/site/items/item[2]/@price * 7"

(* --- FLWOR -------------------------------------------------------------------- *)

let test_flwor_basic () =
  check_canon "for return" "<n>Ann</n>\n<n>Bob</n>\n<n>Cat</n>"
    "for $p in /site/people/person return <n>{$p/name/text()}</n>"

let test_flwor_let_where () =
  check_canon "let + where" "Cat"
    "for $p in /site/people/person let $a := $p/age where $a >= 40 return $p/name/text()"

let test_flwor_order_by () =
  check_canon "order by age" "Bob\nAnn\nCat"
    "for $p in /site/people/person order by $p/age return $p/name/text()";
  check_canon "descending" "Cat\nAnn\nBob"
    "for $p in /site/people/person order by $p/age descending return $p/name/text()";
  check_canon "string keys" "Ann\nBob\nCat"
    "for $p in /site/people/person order by $p/name return $p/name/text()"

let test_flwor_nested () =
  check_count "cross product" 6
    "for $p in /site/people/person, $i in /site/items/item return <x/>"

let test_flwor_let_binds_sequence () =
  check_canon "let binds whole sequence" "3"
    "let $ps := /site/people/person return count($ps)"

(* --- quantifiers, conditionals -------------------------------------------------- *)

let test_quantified () =
  check_canon "some true" "true" {|boolean(some $p in /site/people/person satisfies $p/age > 35)|};
  check_canon "some false" "false" {|boolean(some $p in /site/people/person satisfies $p/age > 99)|};
  check_canon "every" "true" {|boolean(every $p in /site/people/person satisfies $p/age >= 20)|}

let test_node_before () =
  check_canon "document order" "true"
    {|boolean(/site/people/person[@id = "p1"] << /site/people/person[@id = "p2"])|};
  check_canon "reverse is false" "false"
    {|boolean(/site/people/person[@id = "p2"] << /site/people/person[@id = "p1"])|}

let test_if () =
  check_canon "then" "1" "if (1 = 1) then 1 else 2";
  check_canon "else" "2" "if (1 = 3) then 1 else 2";
  check_canon "ebv of node set" "yes" {|if (/site/people) then "yes" else "no"|}

(* --- constructors ------------------------------------------------------------------ *)

let test_constructor_basic () =
  check_canon "empty" "<a></a>" "<a/>";
  check_canon "attrs" "<a x=\"1\"></a>" {|<a x="1"/>|};
  check_canon "attr template" "<a v=\"10.5\"></a>" {|<a v="{/site/items/item[1]/@price}"/>|};
  check_canon "text content" "<a>hi</a>" "<a>hi</a>"

let test_constructor_node_copy () =
  check_canon "deep copy" "<wrap><name>Ann</name></wrap>"
    "<wrap>{/site/people/person[1]/name}</wrap>"

let test_constructor_atomics_join () =
  check_canon "atomics joined with space" "<a>1 2 3</a>" "<a>{1, 2, 3}</a>"

let test_constructor_sequence_content () =
  check_canon "mixed sequence" "<a><b></b><c></c></a>" "<a>{<b/>, <c/>}</a>"

let test_constructed_navigation () =
  check_canon "path into constructed" "x" "let $e := <a><b>x</b></a> return $e/b/text()"

(* --- functions ----------------------------------------------------------------------- *)

let test_count_empty_exists () =
  check_canon "count" "3" "count(/site/people/person)";
  check_canon "empty true" "true" "empty(/site/nothing)";
  check_canon "exists" "true" "exists(/site/people)";
  check_canon "not" "false" "not(1 = 1)"

let test_string_functions () =
  check_canon "contains" "true" {|contains("seahorse", "horse")|};
  check_canon "not contains" "false" {|contains("seahorse", "zebra")|};
  check_canon "starts-with" "true" {|starts-with("seahorse", "sea")|};
  check_canon "string-length" "8" {|string-length("seahorse")|};
  check_canon "concat" "ab" {|concat("a", "b")|};
  check_canon "substring" "horse" {|substring("seahorse", 4)|};
  check_canon "substring 3-arg" "hor" {|substring("seahorse", 4, 3)|};
  check_canon "upper" "HI" {|upper-case("hi")|};
  check_canon "string of node" "Ann" "string(/site/people/person[1]/name)";
  check_canon "string of number" "40" "string(40)";
  check_canon "normalize-space" "a b" {|normalize-space("  a   b  ")|};
  check_canon "translate" "bcd" {|translate("abc", "abc", "bcd")|};
  check_canon "substring-before" "1999" {|substring-before("1999/04/01", "/")|};
  check_canon "substring-after" "04/01" {|substring-after("1999/04/01", "/")|};
  check_canon "substring-before missing" "" {|substring-before("abc", "/")|};
  check_canon "substring-after missing" "" {|substring-after("abc", "/")|}

let test_numeric_functions () =
  check_canon "sum" "90" "sum(/site/people/person/age)";
  check_canon "avg" "30" "avg(/site/people/person/age)";
  check_canon "min" "20" "min(/site/people/person/age)";
  check_canon "max" "40" "max(/site/people/person/age)";
  check_canon "round" "3" "round(2.6)";
  check_canon "floor" "2" "floor(2.6)";
  check_canon "ceiling" "3" "ceiling(2.1)";
  check_canon "number of string" "10.5" "number(/site/items/item[1]/@price)"

let test_cardinality_functions () =
  check_canon "zero-or-one empty" "" "zero-or-one(/site/nothing)";
  check_canon "zero-or-one single" "Ann" "zero-or-one(/site/people/person[1]/name/text())";
  (match run "zero-or-one(/site/people/person)" with
  | exception E.Runtime_error _ -> ()
  | _ -> Alcotest.fail "zero-or-one should reject multiple");
  (match run "exactly-one(/site/nothing)" with
  | exception E.Runtime_error _ -> ()
  | _ -> Alcotest.fail "exactly-one should reject empty");
  check_canon "exactly-one" "Ann" "exactly-one(/site/people/person[1]/name/text())"

let test_distinct_values () =
  check_canon "distinct" "x\ny" "distinct-values(/site/items/item/tag)";
  check_canon "distinct dedups" "1" "count(distinct-values((1, 1, 1)))"

let test_data_and_name () =
  check_canon "data of attr" "10.5" "data(/site/items/item[1]/@price)";
  check_canon "name" "person" "name(/site/people/person[1])"

let test_id_function () =
  check_canon "id()" "Bob" {|id("p2")/name/text()|};
  check_count "id miss" 0 {|id("nope")|}

let test_user_functions () =
  check_canon "user function" "42"
    "declare function local:dbl($x) { $x * 2 }; local:dbl(21)" ;
  check_canon "recursion" "120"
    {|declare function local:fact($n) { if ($n <= 1) then 1 else $n * local:fact($n - 1) };
      local:fact(5)|}

let test_runtime_errors () =
  (match run "$undefined" with
  | exception E.Runtime_error _ -> ()
  | _ -> Alcotest.fail "unbound variable");
  match run "unknown-function(1)" with
  | exception E.Runtime_error _ -> ()
  | _ -> Alcotest.fail "unknown function"

(* user functions are parsed at query level; canon uses eval_string which
   handles prologs, so the declare-function tests above work unchanged. *)

let test_sequences () =
  check_canon "comma" "1\n2\n3" "(1, 2, 3)";
  check_canon "nested flatten" "1\n2\n3" "(1, (2, 3))";
  check_count "sequence of nodes" 5 "(/site/people/person, /site/items/item)";
  check_canon "reverse" "3\n2\n1" "reverse((1, 2, 3))";
  check_canon "subsequence" "2\n3" "subsequence((1, 2, 3, 4), 2, 2)";
  check_canon "subsequence to end" "3\n4" "subsequence((1, 2, 3, 4), 3)"

(* --- levels: same result without accelerators --------------------------------- *)

let test_accelerator_equivalence () =
  let src =
    {|<site><a id="k1"><b><c>one</c></b></a><a id="k2"><b><c>two</c></b></a></site>|}
  in
  let full = store_of src in
  let plain = MM.of_string ~level:`Plain src in
  List.iter
    (fun q ->
      let r1 = Canonical.of_nodes (E.result_to_dom full (run ~store:full q)) in
      let r2 = Canonical.of_nodes (E.result_to_dom plain (run ~store:plain q)) in
      Alcotest.(check string) q r1 r2)
    [
      "//c"; "/site//c/text()"; "count(//b)"; {|/site/a[@id = "k2"]/b/c/text()|};
      {|id("k1")|}; "for $x in //a order by $x/@id descending return $x/@id";
    ]

(* --- corner semantics ---------------------------------------------------------- *)

let test_corner_semantics () =
  (* attribute wildcard *)
  check_count "all attributes" 1 "/site/items/item[2]/@*";
  (* parent with a name test filters *)
  check_count "parent name match" 1 {|/site/people/person[@id = "p1"]/name/parent::person|};
  check_count "parent name mismatch" 0 {|/site/people/person[@id = "p1"]/name/parent::item|};
  (* explicit axes parse and run *)
  check_count "child::" 3 "/site/child::people/child::person";
  check_count "descendant::" 5 "/site/descendant::name";
  (* descendant text() *)
  check_canon "descendant text of item 2" "pin" "/site/items/item[2]//text()";
  (* filter on a parenthesized sequence *)
  check_canon "sequence filter" "20" "(10, 20, 30)[2]";
  (* order by with empty keys: empty sorts first (empty least) *)
  check_canon "empty keys first" "Ann\nCat\nBob"
    "for $p in /site/people/person order by $p/homepage, $p/name return $p/name/text()";
  (* quantifiers over empty sequences *)
  check_canon "some over empty" "false" "boolean(some $x in /site/nothing satisfies 1 = 1)";
  check_canon "every over empty" "true" "boolean(every $x in /site/nothing satisfies 1 = 2)";
  (* node-order comparison with empty operands is false *)
  check_canon "<< with empty" "false" "boolean(/site/nothing << /site/people)";
  (* arithmetic with NaN coercion never satisfies comparisons *)
  check_canon "string arith is nan" "false" {|boolean(("abc" * 2) > 0)|};
  (* if over a node sequence uses effective boolean value *)
  check_canon "ebv multi-node" "2" "if (/site/people/person) then 2 else 3"

let test_before_errors_on_sequences () =
  match run "/site/people/person << /site/items/item" with
  | exception E.Runtime_error _ -> ()
  | _ -> Alcotest.fail "<< should reject multi-node operands"

(* --- optimizer: rewrites must preserve semantics ---------------------------- *)

let opt_doc =
  store_of
    {|<site>
  <people>
    <person id="q1"><name>Ann</name><inc>100</inc></person>
    <person id="q2"><name>Bob</name><inc>300</inc></person>
    <person id="q3"><name>Ann</name></person>
  </people>
  <sales>
    <sale who="q1" amt="5"/>
    <sale who="q2" amt="7"/>
    <sale who="q1" amt="9"/>
    <sale who="zz" amt="1"/>
  </sales>
</site>|}

let both q =
  let plain = E.eval_string ~optimize:false opt_doc q in
  let opt = E.eval_string ~optimize:true opt_doc q in
  ( Canonical.of_nodes (E.result_to_dom opt_doc plain),
    Canonical.of_nodes (E.result_to_dom opt_doc opt) )

let check_same name q =
  let plain, opt = both q in
  Alcotest.(check string) name plain opt

let test_optimizer_equi_join () =
  check_same "hash join on attrs"
    {|for $p in /site/people/person
      return <r>{count(for $s in /site/sales/sale where $s/@who = $p/@id return $s)}</r>|};
  check_same "join keys flipped"
    {|for $p in /site/people/person
      return <r>{for $s in /site/sales/sale where $p/@id = $s/@who return $s/@amt}</r>|};
  check_same "unmatched probe"
    {|for $s in /site/sales/sale where $s/@who = "nobody" return $s|}

let test_optimizer_numeric_keys_fall_back () =
  (* numeric comparison semantics differ from string equality: "5" = "5.0"
     numerically; the optimizer must bail when keys are numeric *)
  check_same "numeric equality"
    {|for $p in /site/people/person
      return <r>{count(for $s in /site/sales/sale where $s/@amt = 5 return $s)}</r>|}

let test_optimizer_inequality_count () =
  check_same "greater-than count"
    {|for $p in /site/people/person
      let $l := for $s in /site/sales/sale where $p/inc > 20 * $s/@amt return $s
      return <r>{count($l)}</r>|};
  check_same "fusion declined on untyped-vs-untyped (string semantics)"
    {|for $p in /site/people/person
      let $l := for $s in /site/sales/sale where $p/inc >= $s/@amt return $s
      return <r n="{$p/@id}">{count($l)}</r>|};
  check_same "less-than count"
    {|for $p in /site/people/person
      let $l := for $s in /site/sales/sale where $p/inc < 20 * $s/@amt return $s
      return <r>{count($l)}</r>|};
  check_same "key side on the left"
    {|for $p in /site/people/person
      let $l := for $s in /site/sales/sale where 20 * $s/@amt <= $p/inc return $s
      return <r>{count($l)}</r>|};
  (* person q3 has no inc: comparison with empty is false -> count 0 *)
  check_same "empty probe"
    {|for $p in /site/people/person
      let $l := for $s in /site/sales/sale where number($p/inc) >= 1 * $s/@amt return $s
      return <r n="{$p/@id}">{count($l)}</r>|}

let test_optimizer_let_not_inlined_when_used () =
  (* $l used beyond count: the let must survive and results stay equal *)
  check_same "mixed use of let"
    {|for $p in /site/people/person
      let $l := for $s in /site/sales/sale where $s/@who = $p/@id return $s
      return <r c="{count($l)}">{$l}</r>|}

let test_optimizer_order_preserved () =
  check_same "join result order"
    {|for $s in /site/sales/sale where $s/@who = "q1" return $s/@amt|}

let test_optimizer_benchmark_queries () =
  (* the twenty queries give identical canonical results with and without
     the optimizer on the same store *)
  let store = store_of (Xmark_xmlgen.Generator.to_string ~factor:0.002 ()) in
  List.iter
    (fun info ->
      let q = info.Xmark_core.Queries.text in
      let plain =
        Canonical.of_nodes (E.result_to_dom store (E.eval_string ~optimize:false store q))
      in
      let opt =
        Canonical.of_nodes (E.result_to_dom store (E.eval_string ~optimize:true store q))
      in
      Alcotest.(check string) (Printf.sprintf "Q%d" info.Xmark_core.Queries.number) plain opt)
    Xmark_core.Queries.all

let () =
  Alcotest.run "xquery-eval"
    [
      ( "paths",
        [
          Alcotest.test_case "child" `Quick test_child_paths;
          Alcotest.test_case "descendant" `Quick test_descendant;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "text()" `Quick test_text_step;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "parent" `Quick test_parent_axis;
          Alcotest.test_case "doc order dedup" `Quick test_doc_order_dedup;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "positional" `Quick test_positional;
          Alcotest.test_case "positional per context" `Quick test_positional_per_context;
          Alcotest.test_case "boolean" `Quick test_boolean_predicates;
          Alcotest.test_case "chained" `Quick test_chained_predicates;
        ] );
      ( "operators",
        [
          Alcotest.test_case "existential comparison" `Quick test_general_comparison_existential;
          Alcotest.test_case "numeric vs string" `Quick test_numeric_vs_string_comparison;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "node before" `Quick test_node_before;
        ] );
      ( "flwor",
        [
          Alcotest.test_case "basic" `Quick test_flwor_basic;
          Alcotest.test_case "let/where" `Quick test_flwor_let_where;
          Alcotest.test_case "order by" `Quick test_flwor_order_by;
          Alcotest.test_case "nested" `Quick test_flwor_nested;
          Alcotest.test_case "let binds sequence" `Quick test_flwor_let_binds_sequence;
          Alcotest.test_case "quantified" `Quick test_quantified;
          Alcotest.test_case "if" `Quick test_if;
        ] );
      ( "constructors",
        [
          Alcotest.test_case "basic" `Quick test_constructor_basic;
          Alcotest.test_case "node copy" `Quick test_constructor_node_copy;
          Alcotest.test_case "atomics join" `Quick test_constructor_atomics_join;
          Alcotest.test_case "sequence content" `Quick test_constructor_sequence_content;
          Alcotest.test_case "navigate constructed" `Quick test_constructed_navigation;
        ] );
      ( "functions",
        [
          Alcotest.test_case "count/empty/exists" `Quick test_count_empty_exists;
          Alcotest.test_case "strings" `Quick test_string_functions;
          Alcotest.test_case "numerics" `Quick test_numeric_functions;
          Alcotest.test_case "cardinality" `Quick test_cardinality_functions;
          Alcotest.test_case "distinct-values" `Quick test_distinct_values;
          Alcotest.test_case "data/name" `Quick test_data_and_name;
          Alcotest.test_case "id" `Quick test_id_function;
          Alcotest.test_case "user functions" `Quick test_user_functions;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "sequences" `Quick test_sequences;
          Alcotest.test_case "corner semantics" `Quick test_corner_semantics;
          Alcotest.test_case "node-order comparison arity" `Quick test_before_errors_on_sequences;
        ] );
      ( "accelerators",
        [ Alcotest.test_case "same results with and without" `Quick test_accelerator_equivalence ] );
      ( "optimizer",
        [
          Alcotest.test_case "equi-join rewrite" `Quick test_optimizer_equi_join;
          Alcotest.test_case "numeric keys fall back" `Quick test_optimizer_numeric_keys_fall_back;
          Alcotest.test_case "inequality count fusion" `Quick test_optimizer_inequality_count;
          Alcotest.test_case "let kept when used directly" `Quick
            test_optimizer_let_not_inlined_when_used;
          Alcotest.test_case "order preserved" `Quick test_optimizer_order_preserved;
          Alcotest.test_case "benchmark queries unchanged" `Quick
            test_optimizer_benchmark_queries;
        ] );
    ]
