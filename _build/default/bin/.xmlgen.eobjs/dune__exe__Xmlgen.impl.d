bin/xmlgen.ml: Arg Cmd Cmdliner Filename Int64 List Option Printf Sys Term Unix Xmark_xmlgen
