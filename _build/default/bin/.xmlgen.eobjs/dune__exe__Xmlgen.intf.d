bin/xmlgen.mli:
