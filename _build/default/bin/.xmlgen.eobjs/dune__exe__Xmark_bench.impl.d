bin/xmark_bench.ml: Arg Cmd Cmdliner Printf Term Xmark_core
