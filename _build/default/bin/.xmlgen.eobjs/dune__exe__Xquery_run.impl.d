bin/xquery_run.ml: Arg Cmd Cmdliner Format Fun List Option Printf Term Xmark_core Xmark_store Xmark_xml Xmark_xmlgen Xmark_xquery
