bin/xmark_verify.ml: Arg Cmd Cmdliner Format Fun List Printf Term Xmark_core Xmark_xmlgen
