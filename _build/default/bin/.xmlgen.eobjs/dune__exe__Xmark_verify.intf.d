bin/xmark_verify.mli:
