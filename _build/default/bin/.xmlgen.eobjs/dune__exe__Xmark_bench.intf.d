bin/xmark_bench.mli:
