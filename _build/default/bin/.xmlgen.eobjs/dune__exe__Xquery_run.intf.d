bin/xquery_run.mli:
