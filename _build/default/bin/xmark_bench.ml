(* xmark_bench — regenerate individual tables/figures of the paper.

   `bench/main.exe` runs everything; this CLI picks one exhibit and a
   factor, which is convenient while exploring. *)

open Cmdliner

let run exhibit factor =
  let module E = Xmark_core.Experiments in
  match exhibit with
  | "table1" -> ignore (E.table1 ~factor ()); 0
  | "table2" -> ignore (E.table2 ~factor ()); 0
  | "table3" -> ignore (E.table3 ~factor ()); 0
  | "fig3" -> ignore (E.fig3 ()); 0
  | "fig4" -> ignore (E.fig4 ()); 0
  | "genperf" -> ignore (E.genperf ()); 0
  | "scaling" -> ignore (E.scaling ()); 0
  | "fulltext" -> ignore (E.fulltext ~factor ()); 0
  | "throughput" -> ignore (E.throughput ~factor ()); 0
  | "workload" -> ignore (E.update_workload ~factor ()); 0
  | "all" -> E.run_all ~factor (); 0
  | other ->
      Printf.eprintf "unknown exhibit %S (table1|table2|table3|fig3|fig4|genperf|scaling|fulltext|throughput|workload|all)\n" other;
      2

let exhibit_arg =
  Arg.(value & pos 0 string "all"
       & info [] ~docv:"EXHIBIT" ~doc:"table1, table2, table3, fig3, fig4, genperf, scaling, fulltext, throughput, workload or all.")

let factor_arg =
  Arg.(value & opt float Xmark_core.Experiments.default_factor
       & info [ "f"; "factor" ] ~docv:"FACTOR" ~doc:"Scaling factor for the table experiments.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "xmark_bench" ~version:"1.0" ~doc) Term.(const run $ exhibit_arg $ factor_arg)

let () = exit (Cmd.eval' cmd)
