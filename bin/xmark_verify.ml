(* xmark_verify — cross-system result verification.

   Runs the benchmark queries on all (or selected) systems over the same
   document and compares canonical results: the query-processor
   verification scenario of the paper's introduction. Exit status is 0
   when every system agrees on every query. *)

open Cmdliner
module Cli = Xmark_core.Cli

let run doc_file factor queries =
  let doc =
    match doc_file with
    | Some path -> Cli.read_file path
    | None ->
        Printf.eprintf "(generating document at factor %g)\n%!" factor;
        Xmark_xmlgen.Generator.to_string ~factor ()
  in
  let queries = match queries with [] -> None | qs -> Some qs in
  let reports = Xmark_core.Verification.compare_systems ?queries doc in
  List.iter (fun r -> Format.printf "%a" Xmark_core.Verification.pp_report r) reports;
  if Xmark_core.Verification.all_agree reports then begin
    Format.printf "all systems agree on all %d queries@." (List.length reports);
    0
  end
  else begin
    Format.printf "DIVERGENCE DETECTED@.";
    1
  end

let queries_arg =
  Arg.(value & pos_all int [] & info [] ~docv:"QUERY" ~doc:"Query numbers (default: all 20).")

let cmd =
  let doc = "verify that all storage backends agree on the benchmark queries" in
  Cmd.v (Cmd.info "xmark_verify" ~version:"1.0" ~doc)
    Term.(const run $ Cli.doc_file $ Cli.factor ~default:0.004 () $ queries_arg)

let () = exit (Cmd.eval' cmd)
