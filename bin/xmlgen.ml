(* xmlgen — the benchmark document generator CLI (paper, Section 4.5).

   Mirrors the original tool's interface: a scaling factor, an output file,
   an optional DOCTYPE, the split-document mode of Section 5, and a
   dry-run statistics mode. *)

open Cmdliner

let generate factor output dtd xsd split_per_file stats seed =
  let seed = Option.map Int64.of_int seed in
  if xsd then begin
    print_string (Xmark_xmlgen.Xsd.text ());
    exit 0
  end;
  if stats then begin
    let (bytes, elements), span =
      let t0 = Unix.gettimeofday () in
      let r = Xmark_xmlgen.Generator.measure ?seed ~factor () in
      (r, (Unix.gettimeofday () -. t0) *. 1000.0)
    in
    let c = Xmark_xmlgen.Profile.counts factor in
    Printf.printf "factor         %g\n" factor;
    Printf.printf "bytes          %d (%.2f MB)\n" bytes (float_of_int bytes /. 1048576.0);
    Printf.printf "elements       %d\n" elements;
    Printf.printf "persons        %d\n" c.Xmark_xmlgen.Profile.persons;
    Printf.printf "items          %d\n" c.Xmark_xmlgen.Profile.items;
    Printf.printf "open auctions  %d\n" c.Xmark_xmlgen.Profile.open_auctions;
    Printf.printf "closed auctions %d\n" c.Xmark_xmlgen.Profile.closed_auctions;
    Printf.printf "categories     %d\n" c.Xmark_xmlgen.Profile.categories;
    Printf.printf "generation     %.1f ms\n" span;
    0
  end
  else
    match split_per_file with
    | Some per_file ->
        let dir = match output with Some o -> o | None -> "." in
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let info = Xmark_xmlgen.Generator.to_split_files ?seed ~factor ~dir ~per_file () in
        Printf.printf "wrote %d files (%d entities) under %s\n"
          (List.length info.Xmark_xmlgen.Sink.files)
          info.Xmark_xmlgen.Sink.entities dir;
        if dtd then begin
          let oc = open_out (Filename.concat dir "auction-split.dtd") in
          output_string oc Xmark_xmlgen.Dtd.text_split;
          close_out oc;
          Printf.printf "wrote %s (IDREFs downgraded for split mode, cf. Section 5)\n"
            (Filename.concat dir "auction-split.dtd")
        end;
        0
    | None -> (
        match output with
        | Some path ->
            Xmark_xmlgen.Generator.to_file ?seed ~dtd ~factor path;
            Printf.printf "wrote %s\n" path;
            0
        | None ->
            if dtd then print_string Xmark_xmlgen.Dtd.text;
            print_string (Xmark_xmlgen.Generator.to_string ?seed ~factor ());
            0)

let output_arg =
  let doc = "Output file (or directory in split mode); stdout by default." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc)

let dtd_arg =
  let doc = "Emit the benchmark DTD (inline DOCTYPE, or auction-split.dtd in split mode)." in
  Arg.(value & flag & info [ "d"; "dtd" ] ~doc)

let split_arg =
  let doc =
    "Split mode (Section 5): write $(docv) entities (persons, items, auctions, categories) per \
     file instead of one document."
  in
  Arg.(value & opt (some int) None & info [ "s"; "split" ] ~docv:"N" ~doc)

let xsd_arg =
  let doc = "Print the XML Schema for the benchmark document and exit." in
  Arg.(value & flag & info [ "xsd" ] ~doc)

let stats_arg =
  let doc = "Print document statistics without writing any output." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let cmd =
  let doc = "generate the scalable XMark auction document" in
  let info = Cmd.info "xmlgen" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const generate
      $ Xmark_core.Cli.factor ~default:0.01 ()
      $ output_arg $ dtd_arg $ xsd_arg $ split_arg $ stats_arg $ Xmark_core.Cli.seed)

let () = exit (Cmd.eval' cmd)
