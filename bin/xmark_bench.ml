(* xmark_bench — regenerate individual tables/figures of the paper.

   `bench/main.exe` runs everything; this CLI picks one exhibit and a
   factor, which is convenient while exploring.  The matrix exhibit and
   --stats-json run the full (system, query) grid, optionally fanned out
   over a domain pool with --jobs; results are identical for any pool
   size.

   --save-snapshot writes the loaded store of one system (--system,
   optionally --doc or --snapshot for the source) to a checksummed paged
   snapshot file and reports how much faster restoring it is than
   parse-and-shred; --snapshot makes the matrix exhibits load every cell
   from a snapshot instead of a document. *)

open Cmdliner
module Cli = Xmark_core.Cli
module Runner = Xmark_core.Runner
module Timing = Xmark_core.Timing

let run_stats_json file factor jobs source pool systems queries =
  let module E = Xmark_core.Experiments in
  (* open before the (possibly long) matrix run, so a bad path fails fast *)
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let cells = E.stats_matrix ~factor ?source ?pool ~systems ~queries () in
      output_string oc (E.stats_json ~jobs ~factor cells));
  Printf.eprintf "wrote %s (%d systems x %d queries at factor %g)\n%!" file
    (List.length systems) (List.length queries) factor;
  0

let run_bench_out file runs factor jobs source pool systems queries =
  let module E = Xmark_core.Experiments in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let cells = E.bench_matrix ~factor ~runs ?source ?pool ~systems ~queries () in
      output_string oc (E.bench_json ~factor ~jobs ~runs cells));
  Printf.eprintf
    "wrote %s (%d systems x %d queries, median of %d run(s) at factor %g)\n%!" file
    (List.length systems) (List.length queries) (max 1 runs) factor;
  0

(* Load one system, snapshot it, and time a restore against the original
   load — the paper's bulkload column with persistence taken seriously. *)
let run_save system doc snapshot factor pool out =
  let source =
    match (snapshot, doc) with
    | Some p, _ -> `Snapshot p
    | None, Some f -> `File f
    | None, None ->
        Printf.eprintf "(generating document at factor %g)\n%!" factor;
        `Text (Xmark_xmlgen.Generator.to_string ~factor ())
  in
  let load_span, save_span =
    (* scoped so the parsed store is dead before the restore is timed *)
    let session, load_span =
      Timing.measure (fun () -> Runner.load ?pool ~source system)
    in
    let (), save_span =
      Timing.measure (fun () -> Runner.save_snapshot ?pool session out)
    in
    (load_span, save_span)
  in
  (* compact away the parsed store: the restore timing should reflect a
     fresh process restoring a snapshot, not a heap that still holds the
     store it was serialised from *)
  Gc.compact ();
  let restored, restore_span =
    Timing.measure (fun () -> Runner.load ?pool ~source:(`Snapshot out) system)
  in
  ignore restored;
  let bytes = (Unix.stat out).Unix.st_size in
  Printf.eprintf "%s: wrote %s (%d bytes, %d pages) in %.1f ms\n"
    (Runner.system_name system) out bytes
    (bytes / Xmark_persist.Page_io.page_size)
    save_span.Timing.wall_ms;
  let source_desc =
    match source with `Snapshot _ -> "snapshot load" | _ -> "parse-and-shred"
  in
  Printf.eprintf "restore: %.1f ms vs %s: %.1f ms (%.1fx speedup)\n%!"
    restore_span.Timing.wall_ms source_desc load_span.Timing.wall_ms
    (load_span.Timing.wall_ms /. Float.max 0.001 restore_span.Timing.wall_ms);
  0

let run exhibit factor jobs no_vec stats_json bench_out bench_runs systems queries system doc
    snapshot save =
  let module E = Xmark_core.Experiments in
  Cli.install_no_vec no_vec;
  let pool = Cli.install_jobs jobs in
  let source = Option.map (fun p -> `Snapshot p) snapshot in
  try
    match save with
    | Some out -> run_save system doc snapshot factor pool out
    | None -> (
        match stats_json with
        | Some file -> (
            try run_stats_json file factor jobs source pool systems queries
            with Failure m | Sys_error m ->
              Printf.eprintf "%s\n" m;
              2)
        | None -> (
            match bench_out with
            | Some file -> (
                try run_bench_out file bench_runs factor jobs source pool systems queries
                with Failure m | Sys_error m ->
                  Printf.eprintf "%s\n" m;
                  2)
            | None -> (
            match exhibit with
            | "table1" -> ignore (E.table1 ~factor ()); 0
            | "table2" -> ignore (E.table2 ~factor ()); 0
            | "table3" -> ignore (E.table3 ~factor ()); 0
            | "fig3" -> ignore (E.fig3 ()); 0
            | "fig4" -> ignore (E.fig4 ()); 0
            | "genperf" -> ignore (E.genperf ()); 0
            | "scaling" -> ignore (E.scaling ()); 0
            | "fulltext" -> ignore (E.fulltext ~factor ()); 0
            | "throughput" -> ignore (E.throughput ~factor ()); 0
            | "workload" -> ignore (E.update_workload ~factor ()); 0
            | "matrix" ->
                (* the deterministic digest goes to stdout: diffing a --jobs N
                   run against a --jobs 1 run is the parallel determinism
                   check, and a --snapshot run against a parse run the
                   persistence one *)
                let result, span =
                  Timing.measure (fun () ->
                      E.matrix ~factor ?source ?pool ~systems ~queries ())
                in
                print_string (E.matrix_digest ~factor result);
                Printf.eprintf "matrix: %d cells with %d job(s) in %.1f ms\n%!"
                  (List.length (fst result)) (max 1 jobs) span.Timing.wall_ms;
                0
            | "all" -> E.run_all ~factor (); 0
            | other ->
                Printf.eprintf
                  "unknown exhibit %S (table1|table2|table3|fig3|fig4|genperf|scaling|fulltext|throughput|workload|matrix|all)\n"
                  other;
                2)))
  with
  (* exit-code contract (README "Exit codes"): 1 = data/evaluation
     error, 2 = bad invocation, 3 = valid query a system cannot run *)
  | Xmark_persist.Corrupt m ->
      Printf.eprintf "snapshot error: %s\n" m;
      1
  | Xmark_xml.Sax.Parse_error { line; col; message } ->
      Printf.eprintf "parse error: line %d, column %d: %s\n" line col message;
      1
  | Runner.Unsupported m ->
      Printf.eprintf "unsupported: %s\n" m;
      3

let exhibit_arg =
  Arg.(value & pos 0 string "all"
       & info [] ~docv:"EXHIBIT"
           ~doc:"table1, table2, table3, fig3, fig4, genperf, scaling, fulltext, throughput, \
                 workload, matrix or all.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "xmark_bench" ~version:"1.0" ~doc)
    Term.(
      const run $ exhibit_arg
      $ Cli.factor ~default:Xmark_core.Experiments.default_factor ()
      $ Cli.jobs $ Cli.no_vec $ Cli.stats_json $ Cli.bench_out $ Cli.bench_runs $ Cli.systems
      $ Cli.queries
      $ Cli.system ~default:Xmark_core.Runner.B ()
      $ Cli.doc_file $ Cli.snapshot $ Cli.save_snapshot)

let () = exit (Cmd.eval' cmd)
