(* xmark_bench — regenerate individual tables/figures of the paper.

   `bench/main.exe` runs everything; this CLI picks one exhibit and a
   factor, which is convenient while exploring. *)

open Cmdliner

(* "B,G" -> [Runner.B; Runner.G] *)
let parse_systems s =
  String.split_on_char ',' s
  |> List.map (fun tok ->
         match String.trim tok with
         | "A" | "a" -> Xmark_core.Runner.A
         | "B" | "b" -> Xmark_core.Runner.B
         | "C" | "c" -> Xmark_core.Runner.C
         | "D" | "d" -> Xmark_core.Runner.D
         | "E" | "e" -> Xmark_core.Runner.E
         | "F" | "f" -> Xmark_core.Runner.F
         | "G" | "g" -> Xmark_core.Runner.G
         | other -> failwith (Printf.sprintf "unknown system %S (expected A-G)" other))

(* "1,8,20" or "1-5,8" -> [1; 8; 20] etc. *)
let parse_queries s =
  String.split_on_char ',' s
  |> List.concat_map (fun tok ->
         let tok = String.trim tok in
         let parse_one t =
           match int_of_string_opt t with
           | Some n when n >= 1 && n <= 20 -> n
           | _ -> failwith (Printf.sprintf "bad query %S (expected 1-20)" t)
         in
         match String.index_opt tok '-' with
         | Some i when i > 0 ->
             let lo = parse_one (String.sub tok 0 i) in
             let hi = parse_one (String.sub tok (i + 1) (String.length tok - i - 1)) in
             if lo > hi then failwith (Printf.sprintf "empty query range %S" tok);
             List.init (hi - lo + 1) (fun k -> lo + k)
         | _ -> [ parse_one tok ])

let run_stats_json file factor systems queries =
  let module E = Xmark_core.Experiments in
  let systems = parse_systems systems and queries = parse_queries queries in
  (* open before the (possibly long) matrix run, so a bad path fails fast *)
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let cells = E.stats_matrix ~factor ~systems ~queries () in
      output_string oc (E.stats_json ~factor cells));
  Printf.eprintf "wrote %s (%d systems x %d queries at factor %g)\n%!" file
    (List.length systems) (List.length queries) factor;
  0

let run exhibit factor stats_json systems queries =
  let module E = Xmark_core.Experiments in
  match stats_json with
  | Some file -> (
      try run_stats_json file factor systems queries
      with Failure m | Sys_error m ->
        Printf.eprintf "%s\n" m;
        2)
  | None ->
  match exhibit with
  | "table1" -> ignore (E.table1 ~factor ()); 0
  | "table2" -> ignore (E.table2 ~factor ()); 0
  | "table3" -> ignore (E.table3 ~factor ()); 0
  | "fig3" -> ignore (E.fig3 ()); 0
  | "fig4" -> ignore (E.fig4 ()); 0
  | "genperf" -> ignore (E.genperf ()); 0
  | "scaling" -> ignore (E.scaling ()); 0
  | "fulltext" -> ignore (E.fulltext ~factor ()); 0
  | "throughput" -> ignore (E.throughput ~factor ()); 0
  | "workload" -> ignore (E.update_workload ~factor ()); 0
  | "all" -> E.run_all ~factor (); 0
  | other ->
      Printf.eprintf "unknown exhibit %S (table1|table2|table3|fig3|fig4|genperf|scaling|fulltext|throughput|workload|all)\n" other;
      2

let exhibit_arg =
  Arg.(value & pos 0 string "all"
       & info [] ~docv:"EXHIBIT" ~doc:"table1, table2, table3, fig3, fig4, genperf, scaling, fulltext, throughput, workload or all.")

let factor_arg =
  Arg.(value & opt float Xmark_core.Experiments.default_factor
       & info [ "f"; "factor" ] ~docv:"FACTOR" ~doc:"Scaling factor for the table experiments.")

let stats_json_arg =
  Arg.(value & opt (some string) None
       & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Instead of an exhibit, run the selected systems and queries with execution \
                 statistics enabled and write per-system/per-query counters as JSON to $(docv).")

let systems_arg =
  Arg.(value & opt string "A,B,C,D,E,F,G"
       & info [ "systems" ] ~docv:"LIST" ~doc:"Comma-separated systems for --stats-json (e.g. B,G).")

let queries_arg =
  Arg.(value & opt string "1-20"
       & info [ "queries" ] ~docv:"LIST"
           ~doc:"Comma-separated query numbers or ranges for --stats-json (e.g. 1,8,20 or 1-5).")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "xmark_bench" ~version:"1.0" ~doc)
    Term.(const run $ exhibit_arg $ factor_arg $ stats_json_arg $ systems_arg $ queries_arg)

let () = exit (Cmd.eval' cmd)
