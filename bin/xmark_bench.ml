(* xmark_bench — regenerate individual tables/figures of the paper.

   `bench/main.exe` runs everything; this CLI picks one exhibit and a
   factor, which is convenient while exploring.  The matrix exhibit and
   --stats-json run the full (system, query) grid, optionally fanned out
   over a domain pool with --jobs; results are identical for any pool
   size.

   --save-snapshot writes the loaded store of one system (--system,
   optionally --doc or --snapshot for the source) to a checksummed paged
   snapshot file and reports how much faster restoring it is than
   parse-and-shred; --snapshot makes the matrix exhibits load every cell
   from a snapshot instead of a document. *)

open Cmdliner
module Cli = Xmark_core.Cli
module Runner = Xmark_core.Runner
module Timing = Xmark_core.Timing

let run_stats_json file factor jobs source pool systems queries =
  let module E = Xmark_core.Experiments in
  (* open before the (possibly long) matrix run, so a bad path fails fast *)
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let cells = E.stats_matrix ~factor ?source ?pool ~systems ~queries () in
      output_string oc (E.stats_json ~jobs ~factor cells));
  Printf.eprintf "wrote %s (%d systems x %d queries at factor %g)\n%!" file
    (List.length systems) (List.length queries) factor;
  0

let run_bench_out file runs factor jobs source pool systems queries =
  let module E = Xmark_core.Experiments in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let cells = E.bench_matrix ~factor ~runs ?source ?pool ~systems ~queries () in
      output_string oc (E.bench_json ~factor ~jobs ~runs cells));
  Printf.eprintf
    "wrote %s (%d systems x %d queries, median of %d run(s) at factor %g)\n%!" file
    (List.length systems) (List.length queries) (max 1 runs) factor;
  0

(* --- sharded scatter-gather bench (--shards) ------------------------------- *)

(* Median of [n] runs of [f], keeping at most one produced value alive
   (a factor-1 store is hundreds of MB; holding three would thrash). *)
let measure_runs n f =
  let v = ref None in
  let times =
    List.init n (fun _ ->
        v := None;
        let x, s = Timing.measure f in
        v := Some x;
        s.Timing.wall_ms)
  in
  (Option.get !v, Timing.median times)

type shard_query_cell = {
  sq_query : int;
  sq_items : int;
  sq_execute_ms : float;
  sq_digest : string;
}

type shard_config_cell = {
  sc_shards : int;  (* 0 = the unsharded baseline *)
  sc_load_ms : float;  (* partition (sharded only) + store builds *)
  sc_partition_ms : float;
  sc_cells : shard_query_cell list;
}

(* One configuration: build the store(s), then per-query execute
   medians.  The sharded path runs in process through
   [Runner.run_sharded] — sequential over shards, so on one core the
   K=1 column should sit within noise of the unsharded baseline and
   the K>1 columns expose the pure scatter-gather overhead. *)
let bench_shard_config ~runs ~system ~queries ~dom k =
  let module P = Xmark_shard.Partitioner in
  (* Level the field between configurations: compact away the previous
     configuration's (and at k=0 the generator's) garbage so the
     first-measured column does not absorb everyone's GC debt. *)
  Gc.compact ();
  if k = 0 then begin
    let session, load_ms =
      measure_runs runs (fun () -> Runner.load ~source:(`Dom dom) system)
    in
    let cells =
      List.map
        (fun q ->
          (* canonicalize inside the timed region: the sharded gather
             consumes canonical item strings, so both columns must pay
             for producing them or the comparison is lopsided *)
          let (outcome, canonical), ms =
            measure_runs runs (fun () ->
                let outcome = Runner.run_session session q in
                (outcome, Runner.canonical outcome))
          in
          {
            sq_query = q;
            sq_items = List.length outcome.Runner.result;
            sq_execute_ms = ms;
            sq_digest = Digest.to_hex (Digest.string canonical);
          })
        queries
    in
    { sc_shards = 0; sc_load_ms = load_ms; sc_partition_ms = 0.0; sc_cells = cells }
  end
  else begin
    let partition, partition_ms =
      measure_runs runs (fun () -> P.partition ~k dom)
    in
    let sharded, build_ms =
      measure_runs runs (fun () ->
          Runner.shard_sessions
            (Array.map
               (fun (sh : P.shard) -> Runner.load ~source:(`Dom sh.P.root) system)
               partition.P.shards))
    in
    let cells =
      List.map
        (fun q ->
          let (items, canonical), ms =
            measure_runs runs (fun () -> Runner.run_sharded sharded q)
          in
          {
            sq_query = q;
            sq_items = items;
            sq_execute_ms = ms;
            sq_digest = Digest.to_hex (Digest.string canonical);
          })
        queries
    in
    {
      sc_shards = k;
      sc_load_ms = partition_ms +. build_ms;
      sc_partition_ms = partition_ms;
      sc_cells = cells;
    }
  end

let shard_config_json c =
  Printf.sprintf
    "{\"shards\": %d, \"load_ms\": %.1f, \"partition_ms\": %.1f, \"queries\": [%s]}"
    c.sc_shards c.sc_load_ms c.sc_partition_ms
    (String.concat ", "
       (List.map
          (fun q ->
            Printf.sprintf
              "{\"query\": %d, \"class\": \"%s\", \"items\": %d, \
               \"execute_ms\": %.2f, \"digest\": \"%s\"}"
              q.sq_query
              (Xmark_core.Merge.class_name q.sq_query)
              q.sq_items q.sq_execute_ms q.sq_digest)
          c.sc_cells))

let run_shard_bench file runs factor system queries ks =
  let module Provenance = Xmark_core.Provenance in
  let runs = max 1 runs in
  let ks = List.sort_uniq compare (List.filter (fun k -> k >= 1) ks) in
  if ks = [] then failwith "--shards needs at least one K >= 1";
  Printf.eprintf "(generating document at factor %g)\n%!" factor;
  let dom = Xmark_xmlgen.Generator.to_dom ~factor () in
  (* the unsharded baseline supplies the reference digests every
     sharded configuration is gated against *)
  let configs =
    List.map
      (fun k ->
        Printf.eprintf "(benchmarking %s, median of %d run(s))\n%!"
          (if k = 0 then "unsharded baseline"
           else Printf.sprintf "%d shard(s)" k)
          runs;
        bench_shard_config ~runs ~system ~queries ~dom k)
      (0 :: ks)
  in
  let baseline = List.hd configs in
  let mismatches = ref 0 in
  List.iter
    (fun c ->
      if c.sc_shards > 0 then
        List.iter2
          (fun b s ->
            if b.sq_digest <> s.sq_digest then begin
              incr mismatches;
              Printf.eprintf "FAIL: Q%d at K=%d diverged from the baseline\n"
                s.sq_query c.sc_shards
            end)
          baseline.sc_cells c.sc_cells)
    configs;
  (* the human-readable scaling table *)
  Printf.printf "%-28s" "";
  List.iter
    (fun c ->
      Printf.printf "%12s"
        (if c.sc_shards = 0 then "unsharded"
         else Printf.sprintf "K=%d" c.sc_shards))
    configs;
  Printf.printf "\n%-28s" "load ms (partition+build)";
  List.iter (fun c -> Printf.printf "%12.1f" c.sc_load_ms) configs;
  print_newline ();
  List.iteri
    (fun i q ->
      Printf.printf "%-28s"
        (Printf.sprintf "Q%-3d %-14s exec ms" q
           (Xmark_core.Merge.class_name q));
      List.iter
        (fun c -> Printf.printf "%12.2f" (List.nth c.sc_cells i).sq_execute_ms)
        configs;
      print_newline ())
    queries;
  (match file with
  | None -> ()
  | Some file ->
      let json =
        Printf.sprintf
          "{\n \"description\": \"Sharded scatter-gather execution: load and \
           per-query execute medians for the unsharded store and K-shard \
           in-process scatter-gather (sequential over shards on this host), \
           same document, digest-gated against the unsharded answers.\",\n \
           \"provenance\": %s,\n \"factor\": %g,\n \"runs\": %d,\n \
           \"system\": \"%s\",\n \"configs\": [%s]\n}\n"
          (Provenance.json ~factor ~jobs:1 ~runs ())
          factor runs
          (let n = Runner.system_name system in
           String.sub n (String.length n - 1) 1)
          (String.concat ", " (List.map shard_config_json configs))
      in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc json);
      Printf.eprintf "wrote %s (%d configuration(s) x %d queries)\n%!" file
        (List.length configs) (List.length queries));
  if !mismatches > 0 then 1 else 0

(* Load one system, snapshot it, and time a restore against the original
   load — the paper's bulkload column with persistence taken seriously. *)
let run_save system doc snapshot factor pool out =
  let source =
    match (snapshot, doc) with
    | Some p, _ -> `Snapshot p
    | None, Some f -> `File f
    | None, None ->
        Printf.eprintf "(generating document at factor %g)\n%!" factor;
        `Text (Xmark_xmlgen.Generator.to_string ~factor ())
  in
  let load_span, save_span =
    (* scoped so the parsed store is dead before the restore is timed *)
    let session, load_span =
      Timing.measure (fun () -> Runner.load ?pool ~source system)
    in
    let (), save_span =
      Timing.measure (fun () -> Runner.save_snapshot ?pool session out)
    in
    (load_span, save_span)
  in
  (* compact away the parsed store: the restore timing should reflect a
     fresh process restoring a snapshot, not a heap that still holds the
     store it was serialised from *)
  Gc.compact ();
  let restored, restore_span =
    Timing.measure (fun () -> Runner.load ?pool ~source:(`Snapshot out) system)
  in
  ignore restored;
  let bytes = (Unix.stat out).Unix.st_size in
  Printf.eprintf "%s: wrote %s (%d bytes, %d pages) in %.1f ms\n"
    (Runner.system_name system) out bytes
    (bytes / Xmark_persist.Page_io.page_size)
    save_span.Timing.wall_ms;
  let source_desc =
    match source with `Snapshot _ -> "snapshot load" | _ -> "parse-and-shred"
  in
  Printf.eprintf "restore: %.1f ms vs %s: %.1f ms (%.1fx speedup)\n%!"
    restore_span.Timing.wall_ms source_desc load_span.Timing.wall_ms
    (load_span.Timing.wall_ms /. Float.max 0.001 restore_span.Timing.wall_ms);
  0

let run exhibit factor jobs no_vec stats_json bench_out bench_runs systems queries system doc
    snapshot save shards =
  let module E = Xmark_core.Experiments in
  Cli.install_no_vec no_vec;
  let pool = Cli.install_jobs jobs in
  let source = Option.map (fun p -> `Snapshot p) snapshot in
  try
    match save with
    | Some out -> run_save system doc snapshot factor pool out
    | None when shards <> [] -> (
        try run_shard_bench bench_out bench_runs factor system queries shards
        with Failure m | Sys_error m ->
          Printf.eprintf "%s\n" m;
          2)
    | None -> (
        match stats_json with
        | Some file -> (
            try run_stats_json file factor jobs source pool systems queries
            with Failure m | Sys_error m ->
              Printf.eprintf "%s\n" m;
              2)
        | None -> (
            match bench_out with
            | Some file -> (
                try run_bench_out file bench_runs factor jobs source pool systems queries
                with Failure m | Sys_error m ->
                  Printf.eprintf "%s\n" m;
                  2)
            | None -> (
            match exhibit with
            | "table1" -> ignore (E.table1 ~factor ()); 0
            | "table2" -> ignore (E.table2 ~factor ()); 0
            | "table3" -> ignore (E.table3 ~factor ()); 0
            | "fig3" -> ignore (E.fig3 ()); 0
            | "fig4" -> ignore (E.fig4 ()); 0
            | "genperf" -> ignore (E.genperf ()); 0
            | "scaling" -> ignore (E.scaling ()); 0
            | "fulltext" -> ignore (E.fulltext ~factor ()); 0
            | "throughput" -> ignore (E.throughput ~factor ()); 0
            | "workload" -> ignore (E.update_workload ~factor ()); 0
            | "matrix" ->
                (* the deterministic digest goes to stdout: diffing a --jobs N
                   run against a --jobs 1 run is the parallel determinism
                   check, and a --snapshot run against a parse run the
                   persistence one *)
                let result, span =
                  Timing.measure (fun () ->
                      E.matrix ~factor ?source ?pool ~systems ~queries ())
                in
                print_string (E.matrix_digest ~factor result);
                Printf.eprintf "matrix: %d cells with %d job(s) in %.1f ms\n%!"
                  (List.length (fst result)) (max 1 jobs) span.Timing.wall_ms;
                0
            | "all" -> E.run_all ~factor (); 0
            | other ->
                Printf.eprintf
                  "unknown exhibit %S (table1|table2|table3|fig3|fig4|genperf|scaling|fulltext|throughput|workload|matrix|all)\n"
                  other;
                2)))
  with
  (* exit-code contract (README "Exit codes"): 1 = data/evaluation
     error, 2 = bad invocation, 3 = valid query a system cannot run *)
  | Xmark_persist.Corrupt m ->
      Printf.eprintf "snapshot error: %s\n" m;
      1
  | Xmark_xml.Sax.Parse_error { line; col; message } ->
      Printf.eprintf "parse error: line %d, column %d: %s\n" line col message;
      1
  | Runner.Unsupported m ->
      Printf.eprintf "unsupported: %s\n" m;
      3

let exhibit_arg =
  Arg.(value & pos 0 string "all"
       & info [] ~docv:"EXHIBIT"
           ~doc:"table1, table2, table3, fig3, fig4, genperf, scaling, fulltext, throughput, \
                 workload, matrix or all.")

let shards_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "shards" ] ~docv:"LIST"
        ~doc:
          "Sharded scatter-gather bench: for each K in the comma-separated \
           $(docv), partition the document into K shards and record load and \
           per-query execute medians (of $(b,--bench-runs) runs) next to the \
           unsharded baseline, digest-gating every sharded answer; with \
           $(b,--bench-out) the results are written as JSON.  Uses \
           $(b,--system) (so pass D for the main-memory reference).")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "xmark_bench" ~version:"1.0" ~doc)
    Term.(
      const run $ exhibit_arg
      $ Cli.factor ~default:Xmark_core.Experiments.default_factor ()
      $ Cli.jobs $ Cli.no_vec $ Cli.stats_json $ Cli.bench_out $ Cli.bench_runs $ Cli.systems
      $ Cli.queries
      $ Cli.system ~default:Xmark_core.Runner.B ()
      $ Cli.doc_file $ Cli.snapshot $ Cli.save_snapshot $ shards_arg)

let () = exit (Cmd.eval' cmd)
