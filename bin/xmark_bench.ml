(* xmark_bench — regenerate individual tables/figures of the paper.

   `bench/main.exe` runs everything; this CLI picks one exhibit and a
   factor, which is convenient while exploring.  The matrix exhibit and
   --stats-json run the full (system, query) grid, optionally fanned out
   over a domain pool with --jobs; results are identical for any pool
   size. *)

open Cmdliner
module Cli = Xmark_core.Cli

let run_stats_json file factor pool systems queries =
  let module E = Xmark_core.Experiments in
  (* open before the (possibly long) matrix run, so a bad path fails fast *)
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let cells = E.stats_matrix ~factor ?pool ~systems ~queries () in
      output_string oc (E.stats_json ~factor cells));
  Printf.eprintf "wrote %s (%d systems x %d queries at factor %g)\n%!" file
    (List.length systems) (List.length queries) factor;
  0

let run exhibit factor jobs stats_json systems queries =
  let module E = Xmark_core.Experiments in
  let pool = Cli.install_jobs jobs in
  match stats_json with
  | Some file -> (
      try run_stats_json file factor pool systems queries
      with Failure m | Sys_error m ->
        Printf.eprintf "%s\n" m;
        2)
  | None ->
  match exhibit with
  | "table1" -> ignore (E.table1 ~factor ()); 0
  | "table2" -> ignore (E.table2 ~factor ()); 0
  | "table3" -> ignore (E.table3 ~factor ()); 0
  | "fig3" -> ignore (E.fig3 ()); 0
  | "fig4" -> ignore (E.fig4 ()); 0
  | "genperf" -> ignore (E.genperf ()); 0
  | "scaling" -> ignore (E.scaling ()); 0
  | "fulltext" -> ignore (E.fulltext ~factor ()); 0
  | "throughput" -> ignore (E.throughput ~factor ()); 0
  | "workload" -> ignore (E.update_workload ~factor ()); 0
  | "matrix" ->
      (* the deterministic digest goes to stdout: diffing a --jobs N run
         against a --jobs 1 run is the parallel determinism check *)
      let result, span = Xmark_core.Timing.measure (fun () -> E.matrix ~factor ?pool ~systems ~queries ()) in
      print_string (E.matrix_digest ~factor result);
      Printf.eprintf "matrix: %d cells with %d job(s) in %.1f ms\n%!"
        (List.length (fst result)) (max 1 jobs) span.Xmark_core.Timing.wall_ms;
      0
  | "all" -> E.run_all ~factor (); 0
  | other ->
      Printf.eprintf "unknown exhibit %S (table1|table2|table3|fig3|fig4|genperf|scaling|fulltext|throughput|workload|matrix|all)\n" other;
      2

let exhibit_arg =
  Arg.(value & pos 0 string "all"
       & info [] ~docv:"EXHIBIT"
           ~doc:"table1, table2, table3, fig3, fig4, genperf, scaling, fulltext, throughput, \
                 workload, matrix or all.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "xmark_bench" ~version:"1.0" ~doc)
    Term.(
      const run $ exhibit_arg
      $ Cli.factor ~default:Xmark_core.Experiments.default_factor ()
      $ Cli.jobs $ Cli.stats_json $ Cli.systems $ Cli.queries)

let () = exit (Cmd.eval' cmd)
