(* xmark_serve — drive the concurrent query service and report
   throughput and tail latency.

   For each selected system the store is loaded once (generated
   document, --doc file, or --snapshot restore) and served concurrently;
   for each entry in --clients a closed-loop workload of
   --duration-requests total requests runs against it.  Sweeping
   --clients 1,2,4,8 produces the client-scaling curve: total work is
   held constant, so req/s across runs is directly comparable.

   The per-run report (stdout) and the --stats-json dump carry
   p50/p90/p99/max latency overall and per query class, plus typed
   failure counts (timeouts, rejections).  Per-query result digests must
   agree across all runs of a system — the binary exits nonzero if
   concurrency ever changed an answer.

   No process-wide default pool is installed here: each run owns a
   private pool sized by --jobs (default: client count capped at the
   hardware's recommended domain count — a pool of 1 means requests
   execute inline on the workload's runner domains), because the
   default pool's deep consumers assume a single submitting domain
   while a server has many. *)

open Cmdliner
module Cli = Xmark_core.Cli
module Runner = Xmark_core.Runner
module Timing = Xmark_core.Timing
module Provenance = Xmark_core.Provenance
module Server = Xmark_service.Server
module Workload = Xmark_service.Workload

let letter sys =
  let name = Runner.system_name sys in
  String.sub name (String.length name - 1) 1

let load_session factor doc snapshot sys =
  let source =
    match (snapshot, doc) with
    | Some p, _ -> `Snapshot p
    | None, Some f -> `File f
    | None, None -> `Text (Xmark_core.Experiments.document factor)
  in
  Runner.load ~source sys

(* One (system, client-count) cell: private pool, fresh server. *)
let run_one ~jobs ~requests ~mix ~deadline ~max_inflight ~queue_depth
    ~plan_cache ~seed session nclients =
  let njobs =
    if jobs > 0 then jobs
    else min nclients (Domain.recommended_domain_count ())
  in
  let config =
    {
      Server.max_inflight = (if max_inflight > 0 then max_inflight else nclients);
      queue_depth;
      deadline_ms = (if deadline > 0.0 then Some deadline else None);
      plan_cache;
    }
  in
  let drive ?pool () =
    let server = Server.create ?pool ~config session in
    let report = Workload.run ?seed ~clients:nclients ~requests ~mix server in
    (report, Server.totals server, njobs)
  in
  if njobs > 1 then Xmark_parallel.with_pool ~jobs:njobs (fun pool -> drive ~pool ())
  else drive ()

(* --- JSON rendering -------------------------------------------------------- *)

let quantiles_json h =
  let p q = Timing.Histogram.percentile h q in
  Printf.sprintf
    "{\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f, \"mean\": %.3f}"
    (p 50.0) (p 90.0) (p 99.0)
    (Timing.Histogram.max_ms h)
    (Timing.Histogram.mean_ms h)

let class_json (c : Workload.class_stats) =
  let p q = Timing.Histogram.percentile c.Workload.cs_hist q in
  Printf.sprintf
    "{\"query\": %d, \"count\": %d, \"ok\": %d, \"timeouts\": %d, \"rejected\": %d, \
     \"failed\": %d, \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f, \
     \"digest\": \"%s\"}"
    c.Workload.cs_query c.Workload.cs_count c.Workload.cs_ok c.Workload.cs_timeouts
    c.Workload.cs_rejected c.Workload.cs_failed (p 50.0) (p 90.0) (p 99.0)
    (Timing.Histogram.max_ms c.Workload.cs_hist)
    (Option.value ~default:"" c.Workload.cs_digest)

let run_json (r : Workload.report) (totals : Server.totals) njobs =
  Printf.sprintf
    "{\"clients\": %d, \"jobs\": %d, \"requests\": %d, \"ok\": %d, \"timeouts\": %d, \
     \"rejected\": %d, \"failed\": %d, \"digest_mismatches\": %d, \"elapsed_s\": %.3f, \
     \"rps\": %.1f, \"plan_hits\": %d, \"plan_misses\": %d, \"latency_ms\": %s, \
     \"per_query\": [%s]}"
    r.Workload.r_clients njobs r.Workload.r_requests r.Workload.r_ok
    r.Workload.r_timeouts r.Workload.r_rejected r.Workload.r_failed
    r.Workload.r_digest_mismatches r.Workload.r_elapsed_s r.Workload.r_rps
    totals.Server.plan_hits totals.Server.plan_misses
    (quantiles_json r.Workload.r_hist)
    (String.concat ", " (List.map class_json r.Workload.r_classes))

(* --- digest agreement across a system's runs ------------------------------- *)

(* Same query, same store => same answer, at any concurrency level: the
   load-independence half of the acceptance contract, checked here so a
   scaling sweep that corrupts a result cannot exit 0. *)
let check_digests sys runs =
  let seen : (int, string) Hashtbl.t = Hashtbl.create 32 in
  let bad = ref 0 in
  List.iter
    (fun (r, _, _) ->
      if r.Workload.r_digest_mismatches > 0 then bad := !bad + r.Workload.r_digest_mismatches;
      List.iter
        (fun (c : Workload.class_stats) ->
          match (c.Workload.cs_digest, Hashtbl.find_opt seen c.Workload.cs_query) with
          | Some d, Some d' when d <> d' ->
              incr bad;
              Printf.eprintf "System %s Q%d: digest differs across client counts\n"
                (letter sys) c.Workload.cs_query
          | Some d, None -> Hashtbl.replace seen c.Workload.cs_query d
          | _ -> ())
        r.Workload.r_classes)
    runs;
  !bad

let run factor jobs clients requests mix_s deadline max_inflight queue_depth
    plan_cache seed systems doc snapshot stats_json_file =
  try
    let mix = Workload.mix_of_string mix_s in
    let seed = Option.map Int64.of_int seed in
    let mismatches = ref 0 in
    let sys_objs =
      List.map
        (fun sys ->
          let session = load_session factor doc snapshot sys in
          Printf.printf "%s (%s)\n%!" (Runner.system_name sys)
            (Runner.system_description sys);
          let runs =
            List.map
              (fun nclients ->
                let ((report, _, _) as cell) =
                  run_one ~jobs ~requests ~mix ~deadline ~max_inflight
                    ~queue_depth ~plan_cache ~seed session nclients
                in
                Format.printf "%a%!" Workload.pp_report report;
                cell)
              clients
          in
          mismatches := !mismatches + check_digests sys runs;
          Printf.sprintf "{\"system\": \"%s\", \"runs\": [%s]}" (letter sys)
            (String.concat ", "
               (List.map (fun (r, totals, njobs) -> run_json r totals njobs) runs)))
        systems
    in
    (match stats_json_file with
    | None -> ()
    | Some file ->
        let json =
          Printf.sprintf
            "{\"provenance\": %s, \"factor\": %g, \"mix\": \"%s\", \
             \"deadline_ms\": %g, \"duration_requests\": %d, \"systems\": [%s]}\n"
            (Provenance.json ~factor ~jobs ~runs:1 ())
            factor (Workload.mix_to_string mix) deadline requests
            (String.concat ", " sys_objs)
        in
        Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc json);
        Printf.eprintf "wrote %s (%d system(s) x %d client sweep(s))\n%!" file
          (List.length systems) (List.length clients));
    if !mismatches > 0 then begin
      Printf.eprintf "FAIL: %d result digest mismatch(es) under concurrency\n" !mismatches;
      1
    end
    else 0
  with
  | Failure m | Sys_error m ->
      Printf.eprintf "%s\n" m;
      2
  | Xmark_xml.Sax.Parse_error { line; col; message } ->
      Printf.eprintf "parse error: line %d, column %d: %s\n" line col message;
      1
  | Xmark_persist.Corrupt m ->
      Printf.eprintf "snapshot error: %s\n" m;
      1
  | Runner.Unsupported m ->
      Printf.eprintf "unsupported: %s\n" m;
      3

let jobs_serve =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domain-pool size for request execution; 0 (the default) sizes the pool to \
           the run's client count capped at the hardware's recommended domain count \
           (a size of 1 executes requests inline on the workload's runner domains).")

let cmd =
  let doc = "serve concurrent queries and measure throughput and tail latency" in
  Cmd.v (Cmd.info "xmark_serve" ~version:"1.0" ~doc)
    Term.(
      const run
      $ Cli.factor ~default:0.01 ()
      $ jobs_serve $ Cli.clients $ Cli.duration_requests $ Cli.mix
      $ Cli.deadline_ms $ Cli.max_inflight $ Cli.queue_depth $ Cli.plan_cache
      $ Cli.seed $ Cli.systems $ Cli.doc_file $ Cli.snapshot $ Cli.stats_json)

let () = exit (Cmd.eval' cmd)
