(* xmark_serve — drive the concurrent query service and report
   throughput and tail latency, in process or over the wire.

   Four modes, selected by --listen / --connect / --fleet:

   - default: load each selected system once and sweep --clients against
     it in process (the PR-5 behavior).  With --wal DIR the sweep runs
     against ONE writable server: updates go through the write-ahead log
     under DIR (durable before acknowledged) and every commit publishes
     a new store epoch; restarting with the same DIR recovers the
     committed state by replaying the log over the base snapshot.
   - --listen ADDR: load one system and serve it over the binary wire
     protocol until killed (writable when --wal is given).
   - --connect ADDR: load nothing; run the same closed-loop workload
     sweep as a socket client against a server started elsewhere.  A
     write mix needs explicit --auctions/--persons id bounds, since the
     client cannot inspect the remote store.
   - --fleet N: fork N read-only worker processes behind a round-robin
     front door; incompatible with --wal (workers cannot share a
     single-writer log).

   Sweeping --clients 1,2,4,8 produces the client-scaling curve: total
   work is held constant, so req/s across runs is directly comparable.
   The per-run report (stdout) and the --stats-json dump carry
   p50/p90/p99/max latency overall and per operation class — reads and
   writes (commit = fsync + publish) on separate histograms — plus
   typed failure counts (timeouts, admission rejections, write
   conflicts).  Result digests are gated per (class, epoch): two
   answers for the same query against the same published store must
   agree across all clients, domains and runs — the binary exits
   nonzero if concurrency (or the wire, or the write path) ever changed
   an answer within an epoch.

   No process-wide default pool is installed here: each local run owns
   a private pool sized by --jobs (default: client count capped at the
   hardware's recommended domain count), because the default pool's
   deep consumers assume a single submitting domain while a server has
   many.  Fleet workers execute requests inline on their connection
   threads — fleet scaling comes from processes, not domains. *)

open Cmdliner
module Cli = Xmark_core.Cli
module Runner = Xmark_core.Runner
module Timing = Xmark_core.Timing
module Provenance = Xmark_core.Provenance
module Server = Xmark_service.Server
module Writer = Xmark_service.Writer
module Workload = Xmark_service.Workload
module Wire = Xmark_wire
module Snapshot = Xmark_persist.Snapshot

let letter sys =
  let name = Runner.system_name sys in
  String.sub name (String.length name - 1) 1

(* Wire modes serve exactly one backend: an explicit single --systems
   entry wins, otherwise System D (the paper's main-memory reference). *)
let pick_system = function [ sys ] -> sys | _ -> Runner.D

let load_session factor doc snapshot sys =
  let source =
    match (snapshot, doc) with
    | Some p, _ -> `Snapshot p
    | None, Some f -> `File f
    | None, None -> `Text (Xmark_core.Experiments.document factor)
  in
  Runner.load ~source sys

let server_config ~nclients ~max_inflight ~queue_depth ~deadline ~plan_cache =
  {
    Server.max_inflight = (if max_inflight > 0 then max_inflight else nclients);
    queue_depth;
    deadline_ms = (if deadline > 0.0 then Some deadline else None);
    plan_cache;
  }

(* Socket runs report no server-side counters: the plan cache lives in
   the (possibly remote, possibly plural) server process. *)
let zero_totals =
  {
    Server.served = 0;
    committed = 0;
    rejected = 0;
    write_rejected = 0;
    timed_out = 0;
    failed = 0;
    plan_hits = 0;
    plan_misses = 0;
    plan_evictions = 0;
  }

(* --- the write path -------------------------------------------------------- *)

let level_of_system sys =
  match sys with
  | Runner.D -> `Full
  | Runner.E -> `Id_only
  | Runner.F -> `Plain
  | _ ->
      failwith
        (Printf.sprintf
           "--wal needs a main-memory system (D, E or F), not %s"
           (Runner.system_name sys))

let open_writer ~factor ~doc ~sys ~dir =
  let level = level_of_system sys in
  let bootstrap () =
    let text =
      match doc with
      | Some f -> In_channel.with_open_bin f In_channel.input_all
      | None -> Xmark_core.Experiments.document factor
    in
    Xmark_xml.Sax.parse_string text
  in
  let writer, info = Writer.open_dir ~level ~dir ~bootstrap () in
  Printf.printf "wal %s: %s\n%!" dir
    (if info.Writer.fresh then "fresh state (base snapshot written, empty log)"
     else
       Printf.sprintf "recovered — %d record(s) replayed%s, resuming at lsn %d"
         info.Writer.replayed
         (if info.Writer.truncated_bytes > 0 then
            Printf.sprintf ", %d torn byte(s) truncated"
              info.Writer.truncated_bytes
          else "")
         (Writer.last_lsn writer));
  writer

(* The id space workload writes draw from: explicit flags win, else the
   bounds are counted off the writer's own tree. *)
let resolve_write_targets ~auctions ~persons writer =
  let auto_a, auto_p = Writer.write_targets writer in
  ( (if auctions > 0 then auctions else auto_a),
    (if persons > 0 then persons else auto_p) )

(* One (system, client-count) cell: private pool, a server fresh from
   [make_server] (read-only case) or wrapping the shared writer. *)
let run_one ~jobs ~requests ~mix ~write_targets ~deadline ~max_inflight
    ~queue_depth ~plan_cache ~seed ~make_server nclients =
  let njobs =
    if jobs > 0 then jobs
    else min nclients (Domain.recommended_domain_count ())
  in
  let config =
    server_config ~nclients ~max_inflight ~queue_depth ~deadline ~plan_cache
  in
  let drive ?pool () =
    let server = make_server ?pool ~config () in
    let report =
      Workload.run ?seed ?write_targets ~clients:nclients ~requests ~mix server
    in
    (report, Server.totals server, njobs)
  in
  if njobs > 1 then Xmark_parallel.with_pool ~jobs:njobs (fun pool -> drive ~pool ())
  else drive ()

(* --- JSON rendering -------------------------------------------------------- *)

let quantiles_json h =
  let p q = Timing.Histogram.percentile h q in
  Printf.sprintf
    "{\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f, \"mean\": %.3f}"
    (p 50.0) (p 90.0) (p 99.0)
    (Timing.Histogram.max_ms h)
    (Timing.Histogram.mean_ms h)

let class_json (c : Workload.class_stats) =
  let p q = Timing.Histogram.percentile c.Workload.cs_hist q in
  Printf.sprintf
    "{\"class\": \"%s\", \"count\": %d, \"ok\": %d, \"timeouts\": %d, \"rejected\": %d, \
     \"conflicts\": %d, \"failed\": %d, \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \
     \"max\": %.3f, \"epochs\": %d, \"digest_mismatches\": %d}"
    (Workload.class_label c.Workload.cs_class)
    c.Workload.cs_count c.Workload.cs_ok c.Workload.cs_timeouts
    c.Workload.cs_rejected c.Workload.cs_conflicts c.Workload.cs_failed
    (p 50.0) (p 90.0) (p 99.0)
    (Timing.Histogram.max_ms c.Workload.cs_hist)
    (Hashtbl.length c.Workload.cs_digests) c.Workload.cs_digest_mismatches

let run_json (r : Workload.report) (totals : Server.totals) njobs =
  Printf.sprintf
    "{\"clients\": %d, \"jobs\": %d, \"requests\": %d, \"ok\": %d, \"committed\": %d, \
     \"timeouts\": %d, \"rejected\": %d, \"conflicts\": %d, \"failed\": %d, \
     \"digest_mismatches\": %d, \"elapsed_s\": %.3f, \"rps\": %.1f, \
     \"plan_hits\": %d, \"plan_misses\": %d, \"latency_ms\": %s, \
     \"write_latency_ms\": %s, \"per_query\": [%s]}"
    r.Workload.r_clients njobs r.Workload.r_requests r.Workload.r_ok
    r.Workload.r_committed r.Workload.r_timeouts r.Workload.r_rejected
    r.Workload.r_conflicts r.Workload.r_failed r.Workload.r_digest_mismatches
    r.Workload.r_elapsed_s r.Workload.r_rps totals.Server.plan_hits
    totals.Server.plan_misses
    (quantiles_json r.Workload.r_hist)
    (quantiles_json r.Workload.r_whist)
    (String.concat ", " (List.map class_json r.Workload.r_classes))

let write_stats_json ~factor ~mix ~deadline ~requests ~transport sys_objs = function
  | None -> ()
  | Some file ->
      let json =
        Printf.sprintf
          "{\"provenance\": %s, \"factor\": %g, \"mix\": \"%s\", \
           \"deadline_ms\": %g, \"duration_requests\": %d, \"transport\": \"%s\", \
           \"systems\": [%s]}\n"
          (Provenance.json ~factor ~jobs:1 ~runs:1 ())
          factor (Workload.mix_to_string mix) deadline requests transport
          (String.concat ", " sys_objs)
      in
      Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc json);
      Printf.eprintf "wrote %s (%d system object(s))\n%!" file (List.length sys_objs)

(* --- digest agreement across a system's runs ------------------------------- *)

(* Same query against the same published epoch => same answer, at any
   concurrency level and over any transport: the load-independence half
   of the acceptance contract, checked here so a sweep that corrupts a
   result cannot exit 0.  Under writes the store legitimately changes —
   the epoch key is what keeps the gate exact instead of vacuous. *)
let check_digests label runs =
  let seen : (string * int, string) Hashtbl.t = Hashtbl.create 64 in
  let bad = ref 0 in
  List.iter
    (fun (r, _, _) ->
      bad := !bad + r.Workload.r_digest_mismatches;
      List.iter
        (fun (c : Workload.class_stats) ->
          let cls = Workload.class_label c.Workload.cs_class in
          Hashtbl.iter
            (fun epoch d ->
              match Hashtbl.find_opt seen (cls, epoch) with
              | Some d' when d' <> d ->
                  incr bad;
                  Printf.eprintf
                    "%s %s at epoch %d: digest differs across runs\n" label cls
                    epoch
              | Some _ -> ()
              | None -> Hashtbl.replace seen (cls, epoch) d)
            c.Workload.cs_digests)
        r.Workload.r_classes)
    runs;
  !bad

let digest_gate mismatches =
  if mismatches > 0 then begin
    Printf.eprintf "FAIL: %d result digest mismatch(es) under concurrency\n"
      mismatches;
    1
  end
  else 0

(* --- wire modes ------------------------------------------------------------ *)

let parse_addr s =
  match Wire.Addr.of_string s with Ok a -> a | Error m -> failwith m

(* The socket side of the sweep: same mixes, same histograms, same
   digest gate — the transport is the only variable. *)
let sweep_socket ~label ~clients ~requests ~mix ~write_targets ~seed ~factor
    ~deadline ~stats_json_file addr =
  let runs =
    List.map
      (fun nclients ->
        let report =
          Workload.run_transport ?seed ?write_targets ~clients:nclients
            ~requests ~mix
            (Wire.Client.transport addr)
        in
        Format.printf "%a%!" Workload.pp_report report;
        (report, zero_totals, 0))
      clients
  in
  let mismatches = check_digests label runs in
  let sys_obj =
    Printf.sprintf "{\"system\": \"%s\", \"runs\": [%s]}" label
      (String.concat ", "
         (List.map (fun (r, totals, njobs) -> run_json r totals njobs) runs))
  in
  write_stats_json ~factor ~mix ~deadline ~requests
    ~transport:(Wire.Addr.to_string addr) [ sys_obj ] stats_json_file;
  (* a sweep where nothing ever succeeded is a failed run, digests or
     not — e.g. --connect against an address nobody serves *)
  if
    List.for_all
      (fun (r, _, _) -> r.Workload.r_ok + r.Workload.r_committed = 0)
      runs
  then begin
    Printf.eprintf "FAIL: no request succeeded against %s\n"
      (Wire.Addr.to_string addr);
    1
  end
  else digest_gate mismatches

let serve_mode ~factor ~doc ~snapshot ~systems ~max_inflight ~queue_depth
    ~deadline ~plan_cache ~wal addr_s =
  let sys = pick_system systems in
  let config =
    server_config ~nclients:4 ~max_inflight ~queue_depth ~deadline ~plan_cache
  in
  let addr = parse_addr addr_s in
  let server, close_writer =
    match wal with
    | None -> (Server.create ~config (load_session factor doc snapshot sys), ignore)
    | Some dir ->
        if snapshot <> None then
          failwith "--wal manages its own base snapshot; drop --snapshot";
        let writer = open_writer ~factor ~doc ~sys ~dir in
        (Server.create_writable ~config writer, fun () -> Writer.close writer)
  in
  Printf.printf "serving %s%s on %s\n%!" (Runner.system_name sys)
    (if Server.writable server then
       Printf.sprintf " (writable, epoch %d)" (Server.epoch server)
     else "")
    (Wire.Addr.to_string addr);
  Fun.protect ~finally:close_writer (fun () ->
      Wire.Wire_server.serve addr server);
  0

let rm_quiet path = try Sys.remove path with Sys_error _ -> ()

let fleet_mode ~workers ~listen ~factor ~doc ~snapshot ~systems ~max_inflight
    ~queue_depth ~deadline ~plan_cache ~clients ~requests ~mix ~seed
    ~stats_json_file =
  (* Resolve the snapshot every worker restores.  All of this runs
     before Fleet.start forks, while the parent is still
     single-threaded. *)
  let snap_path, sys, cleanup_snap =
    match snapshot with
    | Some path ->
        let sysc, kind, bytes = Snapshot.probe path in
        Printf.printf "fleet: snapshot %s (System %c, %s payload, %d bytes)\n%!"
          path sysc kind bytes;
        let sys =
          match systems with
          | [ s ] -> s
          | _ -> (
              match Cli.system_of_string (String.make 1 sysc) with
              | Ok s -> s
              | Error (`Msg m) -> failwith m)
        in
        (path, sys, ignore)
    | None ->
        let sys = pick_system systems in
        let session = load_session factor doc None sys in
        let path = Filename.temp_file "xmark_fleet" ".xms" in
        Runner.save_snapshot session path;
        Printf.printf "fleet: wrote bootstrap snapshot %s (System %s)\n%!" path
          (letter sys);
        (path, sys, fun () -> rm_quiet path)
  in
  let config =
    server_config
      ~nclients:(max 4 (List.fold_left max 1 clients))
      ~max_inflight ~queue_depth ~deadline ~plan_cache
  in
  (* Runs in worker i after the fork: restore (read-only — all workers
     share the file) and serve inline on connection threads. *)
  let make_server _i =
    Server.create ~config (Runner.load ~source:(`Snapshot snap_path) sys)
  in
  let front, cleanup_front =
    match listen with
    | Some a -> (parse_addr a, ignore)
    | None ->
        let dir = Filename.temp_file "xmark_fleet" ".d" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        ( Wire.Addr.Unix_sock (Filename.concat dir "front.sock"),
          fun () -> try Unix.rmdir dir with Unix.Unix_error _ -> () )
  in
  let fleet = Wire.Fleet.start ~workers ~make_server front in
  Fun.protect
    ~finally:(fun () ->
      Wire.Fleet.stop fleet;
      cleanup_snap ();
      cleanup_front ())
    (fun () ->
      Printf.printf "fleet: %d worker(s) (pids %s) behind %s\n%!" workers
        (String.concat ","
           (List.map string_of_int (Wire.Fleet.pids fleet)))
        (Wire.Addr.to_string front);
      match listen with
      | Some _ ->
          let quit = ref false in
          let stop _ = quit := true in
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          while not !quit do
            Unix.sleepf 0.2
          done;
          0
      | None ->
          sweep_socket
            ~label:(Printf.sprintf "%s-fleet%d" (letter sys) workers)
            ~clients ~requests ~mix ~write_targets:None ~seed ~factor
            ~deadline ~stats_json_file front)

(* --- sharded scatter-gather ------------------------------------------------ *)

(* --shards K: partition, persist one snapshot per shard plus the
   manifest, serve each shard from its own forked worker, and execute
   Q1-Q20 scatter-gather — gating every answer against the single-store
   digest.  The manifest round-trips through disk and is validated
   against the shard files before any worker loads one, so the mode
   exercises the whole deployment path, not just the merge logic. *)
let shards_mode ~k ~factor ~doc ~systems ~max_inflight ~queue_depth ~deadline
    ~plan_cache =
  let sys = pick_system systems in
  let root =
    match doc with
    | Some f ->
        Xmark_xml.Sax.parse_string
          (In_channel.with_open_bin f In_channel.input_all)
    | None -> Xmark_xmlgen.Generator.to_dom ~factor ()
  in
  let partition, part_span =
    Timing.measure (fun () -> Xmark_shard.Partitioner.partition ~k root)
  in
  let dir = Filename.temp_file "xmark_shards" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let cleanup_dir () =
    Array.iter
      (fun f -> rm_quiet (Filename.concat dir f))
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup_dir (fun () ->
      let files =
        List.init k (fun i ->
            let file = Printf.sprintf "shard-%d.xms" i in
            let session =
              Runner.load
                ~source:
                  (`Dom partition.Xmark_shard.Partitioner.shards.(i)
                          .Xmark_shard.Partitioner.root)
                sys
            in
            Runner.save_snapshot session (Filename.concat dir file);
            file)
      in
      let manifest =
        Xmark_shard.Manifest.of_partition ~files ~dir partition
      in
      Xmark_shard.Manifest.write ~dir manifest;
      let manifest = Xmark_shard.Manifest.read ~dir in
      Xmark_shard.Manifest.validate ~dir manifest;
      Printf.printf
        "shards: %d slice(s) of System %s under %s (partitioned in %.1f ms)\n%!"
        k (letter sys) dir part_span.Timing.wall_ms;
      Array.iteri
        (fun i e ->
          Printf.printf "  shard %d: %s, %d bytes, entities %s\n%!" i
            e.Xmark_shard.Manifest.file e.Xmark_shard.Manifest.bytes
            (String.concat " "
               (List.filter_map
                  (fun (tag, (start, count)) ->
                    if count = 0 then None
                    else Some (Printf.sprintf "%s[%d,%d)" tag start (start + count)))
                  e.Xmark_shard.Manifest.ranges)))
        manifest.Xmark_shard.Manifest.shards;
      (* the single-store reference this mode gates against; loaded
         before the fork so the comparison cannot drift *)
      let reference = Runner.load ~source:(`Dom root) sys in
      let config =
        server_config ~nclients:4 ~max_inflight ~queue_depth ~deadline
          ~plan_cache
      in
      let make_server i =
        Server.create ~shard:i ~config
          (Runner.load
             ~source:
               (`Snapshot
                 (Filename.concat dir
                    manifest.Xmark_shard.Manifest.shards.(i)
                      .Xmark_shard.Manifest.file))
             sys)
      in
      let front =
        Wire.Addr.Unix_sock (Filename.concat dir "front.sock")
      in
      let fleet = Wire.Fleet.start ~workers:k ~make_server front in
      Fun.protect
        ~finally:(fun () -> Wire.Fleet.stop fleet)
        (fun () ->
          let scatter =
            Xmark_shard.Scatter.create
              (List.map
                 (fun a -> Xmark_shard.Scatter.Remote a)
                 (Wire.Fleet.worker_addrs fleet))
          in
          Fun.protect
            ~finally:(fun () -> Xmark_shard.Scatter.close scatter)
            (fun () ->
              Printf.printf
                "shards: %d worker(s) (pids %s), scatter-gather over Q1-Q20\n%!"
                k
                (String.concat ","
                   (List.map string_of_int (Wire.Fleet.pids fleet)));
              let bad = ref 0 in
              List.iter
                (fun q ->
                  let want =
                    Digest.to_hex
                      (Digest.string (Runner.canonical (Runner.run_session reference q)))
                  in
                  match
                    Timing.measure (fun () ->
                        Xmark_shard.Scatter.run scatter q)
                  with
                  | Ok a, span ->
                      let same = a.Xmark_shard.Scatter.digest = want in
                      if not same then incr bad;
                      Printf.printf "  Q%-2d %4d item(s)  %8.2f ms  %s  %s\n%!"
                        q a.Xmark_shard.Scatter.items span.Timing.wall_ms
                        (Xmark_core.Merge.class_name q)
                        (if same then "digest ok" else "DIGEST MISMATCH")
                  | Error e, _ ->
                      incr bad;
                      Printf.printf "  Q%-2d FAILED: %s\n%!" q
                        (Server.error_to_string e))
                (List.init 20 (fun i -> i + 1));
              if !bad > 0 then begin
                Printf.eprintf
                  "FAIL: %d of 20 sharded answers diverged from the single store\n"
                  !bad;
                1
              end
              else begin
                Printf.printf
                  "all 20 sharded answers byte-identical to the single store\n%!";
                0
              end)))

(* --- local (in-process) sweeps --------------------------------------------- *)

let local_mode ~factor ~jobs ~clients ~requests ~mix ~deadline ~max_inflight
    ~queue_depth ~plan_cache ~seed ~systems ~doc ~snapshot ~stats_json_file =
  let mismatches = ref 0 in
  let sys_objs =
    List.map
      (fun sys ->
        let session = load_session factor doc snapshot sys in
        Printf.printf "%s (%s)\n%!" (Runner.system_name sys)
          (Runner.system_description sys);
        let runs =
          List.map
            (fun nclients ->
              let ((report, _, _) as cell) =
                run_one ~jobs ~requests ~mix ~write_targets:None ~deadline
                  ~max_inflight ~queue_depth ~plan_cache ~seed
                  ~make_server:(fun ?pool ~config () ->
                    Server.create ?pool ~config session)
                  nclients
              in
              Format.printf "%a%!" Workload.pp_report report;
              cell)
            clients
        in
        mismatches :=
          !mismatches + check_digests ("System " ^ letter sys) runs;
        Printf.sprintf "{\"system\": \"%s\", \"runs\": [%s]}" (letter sys)
          (String.concat ", "
             (List.map (fun (r, totals, njobs) -> run_json r totals njobs) runs)))
      systems
  in
  write_stats_json ~factor ~mix ~deadline ~requests ~transport:"local" sys_objs
    stats_json_file;
  digest_gate !mismatches

(* The writable sweep: ONE writer (one log, one master tree) shared by
   every client count — state accumulates across runs exactly like a
   long-lived service, and epochs keep increasing, so the per-epoch
   digest gate spans the whole sweep. *)
let local_wal_mode ~factor ~jobs ~clients ~requests ~mix ~deadline
    ~max_inflight ~queue_depth ~plan_cache ~seed ~systems ~doc ~snapshot
    ~auctions ~persons ~dir ~stats_json_file =
  if snapshot <> None then
    failwith "--wal manages its own base snapshot; drop --snapshot";
  let sys = pick_system systems in
  let writer = open_writer ~factor ~doc ~sys ~dir in
  Fun.protect
    ~finally:(fun () -> Writer.close writer)
    (fun () ->
      let n_auctions, n_persons =
        resolve_write_targets ~auctions ~persons writer
      in
      Printf.printf
        "%s (%s), writable: epoch %d, write targets %d auction(s) x %d person(s)\n%!"
        (Runner.system_name sys)
        (Runner.system_description sys)
        (Writer.last_lsn writer) n_auctions n_persons;
      let runs =
        List.map
          (fun nclients ->
            let ((report, _, _) as cell) =
              run_one ~jobs ~requests ~mix
                ~write_targets:(Some (n_auctions, n_persons))
                ~deadline ~max_inflight ~queue_depth ~plan_cache ~seed
                ~make_server:(fun ?pool ~config () ->
                  Server.create_writable ?pool ~config writer)
                nclients
            in
            Format.printf "%a%!" Workload.pp_report report;
            cell)
          clients
      in
      let mismatches = check_digests ("System " ^ letter sys) runs in
      Printf.printf "wal %s: %d record(s) durable at exit\n%!" dir
        (Writer.last_lsn writer);
      let sys_obj =
        Printf.sprintf "{\"system\": \"%s-wal\", \"runs\": [%s]}" (letter sys)
          (String.concat ", "
             (List.map (fun (r, totals, njobs) -> run_json r totals njobs) runs))
      in
      write_stats_json ~factor ~mix ~deadline ~requests ~transport:"local"
        [ sys_obj ] stats_json_file;
      digest_gate mismatches)

(* --wal DIR --checkpoint: one-shot maintenance.  Open (recovering),
   fold the log into a fresh base, report, exit — the next open replays
   nothing and answers identically (test_wal proves the digests). *)
let checkpoint_mode ~factor ~doc ~systems ~dir =
  let sys = pick_system systems in
  let writer = open_writer ~factor ~doc ~sys ~dir in
  Fun.protect
    ~finally:(fun () -> Writer.close writer)
    (fun () ->
      let before = Writer.last_lsn writer in
      match Writer.checkpoint writer with
      | Ok folded ->
          Printf.printf
            "checkpoint %s: %d record(s) folded into a fresh base snapshot \
             (lsn %d -> 0, log truncated)\n%!"
            dir folded before;
          0
      | Error e ->
          Printf.eprintf "checkpoint failed: %s\n" (Server.error_to_string e);
          1)

let run factor jobs clients requests mix_s deadline max_inflight queue_depth
    plan_cache seed systems doc snapshot stats_json_file listen connect fleet
    wal auctions persons shards checkpoint =
  try
    let mix = Workload.mix_of_string mix_s in
    let seed = Option.map Int64.of_int seed in
    if fleet > 0 && wal <> None then
      failwith "--fleet workers are read-only; --wal cannot be combined with --fleet";
    if checkpoint && shards > 0 then
      failwith "--checkpoint compacts a write-ahead log; it cannot be combined with --shards";
    if checkpoint then
      match wal with
      | Some dir -> checkpoint_mode ~factor ~doc ~systems ~dir
      | None -> failwith "--checkpoint needs --wal DIR"
    else if shards > 0 then begin
      if wal <> None then
        failwith "shard workers are read-only; --wal cannot be combined with --shards";
      if fleet > 0 then
        failwith "--shards runs its own per-shard fleet; drop --fleet";
      if listen <> None || connect <> None then
        failwith "--shards runs its own workers and sweep; drop --listen/--connect";
      if snapshot <> None then
        failwith "--shards partitions the document itself; drop --snapshot";
      if Workload.has_writes mix then
        failwith "shard workers are read-only; use a read mix";
      shards_mode ~k:shards ~factor ~doc ~systems ~max_inflight ~queue_depth
        ~deadline ~plan_cache
    end
    else
    match (listen, connect) with
    | Some _, Some _ -> failwith "--connect and --listen are mutually exclusive"
    | None, Some addr_s ->
        if fleet > 0 then failwith "--connect and --fleet are mutually exclusive";
        if wal <> None then
          failwith "--wal opens a local write path; it cannot be combined with --connect";
        let write_targets =
          if not (Workload.has_writes mix) then None
          else if auctions > 0 && persons > 0 then Some (auctions, persons)
          else
            failwith
              "--connect with a write mix needs explicit --auctions and \
               --persons (the client cannot inspect the remote store)"
        in
        sweep_socket ~label:"remote" ~clients ~requests ~mix ~write_targets
          ~seed ~factor ~deadline ~stats_json_file (parse_addr addr_s)
    | listen, None when fleet > 0 ->
        if Workload.has_writes mix then
          failwith "fleet workers are read-only; use a read mix or drop --fleet";
        fleet_mode ~workers:fleet ~listen ~factor ~doc ~snapshot ~systems
          ~max_inflight ~queue_depth ~deadline ~plan_cache ~clients ~requests
          ~mix ~seed ~stats_json_file
    | Some addr_s, None ->
        serve_mode ~factor ~doc ~snapshot ~systems ~max_inflight ~queue_depth
          ~deadline ~plan_cache ~wal addr_s
    | None, None -> (
        match wal with
        | Some dir ->
            local_wal_mode ~factor ~jobs ~clients ~requests ~mix ~deadline
              ~max_inflight ~queue_depth ~plan_cache ~seed ~systems ~doc
              ~snapshot ~auctions ~persons ~dir ~stats_json_file
        | None ->
            if Workload.has_writes mix then
              failwith
                "a write mix needs a write path: give --wal DIR (local) or \
                 --connect to a writable server";
            local_mode ~factor ~jobs ~clients ~requests ~mix ~deadline
              ~max_inflight ~queue_depth ~plan_cache ~seed ~systems ~doc
              ~snapshot ~stats_json_file)
  with
  | Failure m | Sys_error m ->
      Printf.eprintf "%s\n" m;
      2
  | Xmark_xml.Sax.Parse_error { line; col; message } ->
      Printf.eprintf "parse error: line %d, column %d: %s\n" line col message;
      1
  | Xmark_persist.Corrupt m ->
      Printf.eprintf "snapshot error: %s\n" m;
      1
  | Runner.Unsupported m ->
      Printf.eprintf "unsupported: %s\n" m;
      3

let jobs_serve =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domain-pool size for request execution; 0 (the default) sizes the pool to \
           the run's client count capped at the hardware's recommended domain count \
           (a size of 1 executes requests inline on the workload's runner domains).")

let wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Open the write path: keep a base snapshot and a write-ahead log \
           under $(docv) (created if needed; reopened with crash recovery — \
           torn tail truncated, committed records replayed).  Updates in the \
           mix are durable before they are acknowledged, and each commit \
           publishes a new store epoch to readers.  Needs a main-memory \
           system (D, E or F).")

let auctions_arg =
  Arg.(
    value & opt int 0
    & info [ "auctions" ] ~docv:"N"
        ~doc:
          "Id bound for generated writes: bids/closes target \
           $(b,open_auction)$(i,i) with i < $(docv).  0 (default) counts the \
           bound off the writable store; required with --connect.")

let persons_arg =
  Arg.(
    value & opt int 0
    & info [ "persons" ] ~docv:"N"
        ~doc:
          "Id bound for generated writes: bids reference $(b,person)$(i,i) \
           with i < $(docv).  0 (default) counts the bound off the writable \
           store; required with --connect.")

let checkpoint_arg =
  Arg.(
    value & flag
    & info [ "checkpoint" ]
        ~doc:
          "With $(b,--wal DIR): recover the write state, fold the log into a \
           fresh base snapshot, truncate the log, and exit.  The next open \
           replays nothing and answers every query with the same digests.")

let cmd =
  let doc = "serve concurrent queries and updates; measure throughput and tail latency" in
  Cmd.v (Cmd.info "xmark_serve" ~version:"1.0" ~doc)
    Term.(
      const run
      $ Cli.factor ~default:0.01 ()
      $ jobs_serve $ Cli.clients $ Cli.duration_requests $ Cli.mix
      $ Cli.deadline_ms $ Cli.max_inflight $ Cli.queue_depth $ Cli.plan_cache
      $ Cli.seed $ Cli.systems $ Cli.doc_file $ Cli.snapshot $ Cli.stats_json
      $ Cli.listen $ Cli.connect $ Cli.fleet $ wal_arg $ auctions_arg
      $ persons_arg $ Cli.shards $ checkpoint_arg)

let () = exit (Cmd.eval' cmd)
