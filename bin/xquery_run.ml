(* xquery_run — execute XQuery against an XMark document.

   The document comes from a file, is generated on the fly, or is
   restored from a saved snapshot (--snapshot; --save-snapshot writes
   one); the query is a literal expression, a file, or one of the twenty
   benchmark queries by number.  The backend flag selects the storage
   architecture (Systems A-G of the paper), so the same query can be
   timed across physical mappings. *)

open Cmdliner
module Cli = Xmark_core.Cli

let read_file = Cli.read_file

let warn_paths doc qtext =
  (* Section 7's suggestion: warn when a path step names a tag that does
     not occur in the database instance. *)
  match Xmark_xquery.Parser.parse_query qtext with
  | exception _ -> ()
  | ast ->
      let module MM = Xmark_store.Backend_mainmem in
      let module PC = Xmark_xquery.Pathcheck.Make (MM) in
      let store = MM.of_string ~level:`Full doc in
      List.iter
        (fun w -> Format.eprintf "%a@." Xmark_xquery.Pathcheck.pp_warning w)
        (PC.check ~vocabulary:Xmark_xmlgen.Dtd.element_names store ast)

let print_summary doc =
  let module MM = Xmark_store.Backend_mainmem in
  let store = MM.of_string ~level:`Full doc in
  Format.printf "%a@?" Xmark_store.Summary.pp
    (Xmark_store.Summary.build (MM.dom_root store))

let run doc_file snapshot save_snapshot factor system query query_file query_number show_timing
    canonical_out warn summary explain no_vec jobs =
  if explain then Xmark_core.Stats.enable ();
  Cli.install_no_vec no_vec;
  let pool = Cli.install_jobs jobs in
  let source, doc =
    match snapshot with
    | Some path -> (`Snapshot path, None)
    | None -> (
        match doc_file with
        | Some path ->
            let doc = read_file path in
            (`Text doc, Some doc)
        | None ->
            Printf.eprintf "(generating document at factor %g)\n%!" factor;
            let doc = Xmark_xmlgen.Generator.to_string ~factor () in
            (`Text doc, Some doc))
  in
  let session = Xmark_core.Runner.load ?pool ~source system in
  let store = session.Xmark_core.Runner.store in
  let stats = session.Xmark_core.Runner.load_stats in
  if show_timing then
    Printf.eprintf "bulkload: %.1f ms, %d bytes\n%!"
      stats.Xmark_core.Runner.load.Xmark_core.Timing.wall_ms stats.Xmark_core.Runner.db_bytes;
  (match save_snapshot with
  | None -> ()
  | Some out ->
      let (), span =
        Xmark_core.Timing.measure (fun () ->
            Xmark_core.Runner.save_snapshot ?pool session out)
      in
      Printf.eprintf "wrote snapshot %s in %.1f ms\n%!" out span.Xmark_core.Timing.wall_ms);
  let qtext_for_warning =
    match (query_number, query, query_file) with
    | Some n, _, _ -> Some (Xmark_core.Queries.text n)
    | None, Some q, _ -> Some q
    | None, None, Some f -> Some (read_file f)
    | None, None, None -> None
  in
  (* path warnings and the structural summary both need the document
     text; a snapshot-restored session does not keep it around *)
  if warn then begin
    match doc with
    | Some d -> Option.iter (warn_paths d) qtext_for_warning
    | None -> prerr_endline "--warn-paths needs a document source; skipped under --snapshot"
  end;
  if summary then begin
    match doc with
    | Some d ->
        print_summary d;
        if qtext_for_warning = None then exit 0
    | None -> prerr_endline "--summary needs a document source; skipped under --snapshot"
  end;
  let prepared =
    match (query_number, query, query_file) with
    | Some n, _, _ -> Xmark_core.Runner.prepare store n
    | None, Some q, _ -> Xmark_core.Runner.prepare_text store q
    | None, None, Some f -> Xmark_core.Runner.prepare_text store (read_file f)
    | None, None, None ->
        if save_snapshot <> None then exit 0;
        prerr_endline "no query given (use -q, --query-file or --benchmark N, or --summary alone)";
        exit 2
  in
  (* physical plan on stderr, before execution, like EXPLAIN would be *)
  if explain then begin
    Printf.eprintf "physical plan (%s):\n"
      (Xmark_core.Runner.system_name system);
    List.iter
      (fun line -> Printf.eprintf "  %s\n" line)
      (Xmark_core.Runner.plan_description prepared);
    flush stderr
  end;
  let outcome = Xmark_core.Runner.execute_prepared prepared in
  if show_timing then
    Printf.eprintf "compile: %.2f ms  execute: %.2f ms  items: %d\n%!"
      outcome.Xmark_core.Runner.compile.Xmark_core.Timing.wall_ms
      outcome.Xmark_core.Runner.execute.Xmark_core.Timing.wall_ms outcome.Xmark_core.Runner.items;
  if canonical_out then print_endline (Xmark_core.Runner.canonical outcome)
  else
    print_endline (Xmark_xml.Serialize.fragment_to_string outcome.Xmark_core.Runner.result);
  (* stats go to stderr so the result on stdout stays byte-identical with
     and without --explain *)
  if explain then Format.eprintf "%a@?" Xmark_core.Stats.pp ();
  0

(* exit-code contract (README "Exit codes"): 1 = data/evaluation error,
   2 = bad invocation (cmdliner's own), 3 = valid query the selected
   system cannot run — distinct so scripts can tell "broken" from
   "unsupported on this backend". *)
let run_safe a b c d e f g h i j k l m n o =
  try run a b c d e f g h i j k l m n o with
  | Xmark_xquery.Parser.Error _ as ex ->
      Printf.eprintf "%s\n" (Xmark_xquery.Parser.describe_error "" ex);
      1
  | Xmark_core.Runner.Unsupported m ->
      Printf.eprintf "unsupported: %s\n" m;
      3
  | Xmark_xml.Sax.Parse_error { line; col; message } ->
      Printf.eprintf "parse error: line %d, column %d: %s\n" line col message;
      1
  | Xmark_persist.Corrupt m ->
      Printf.eprintf "snapshot error: %s\n" m;
      1
  | Invalid_argument m | Failure m | Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      1

let query_arg =
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"XQUERY" ~doc:"Query text.")

let query_file_arg =
  Arg.(value & opt (some file) None & info [ "query-file" ] ~docv:"FILE" ~doc:"Query file.")

let number_arg =
  Arg.(value & opt (some int) None
       & info [ "b"; "benchmark" ] ~docv:"N" ~doc:"Run benchmark query N (1-20).")

let timing_arg = Arg.(value & flag & info [ "t"; "timing" ] ~doc:"Print timings to stderr.")

let canonical_arg =
  Arg.(value & flag & info [ "canonical" ] ~doc:"Print the canonical form used for result comparison.")

let summary_arg =
  Arg.(value & flag
       & info [ "summary" ]
           ~doc:"Print the document's structural summary (DataGuide): every label path with its \
                 cardinality.")

let warn_arg =
  Arg.(value & flag
       & info [ "warn-paths" ]
           ~doc:"Validate path expressions online: warn about steps naming tags that do not occur \
                 in the database (the paper's Section 7 suggestion).")

let cmd =
  let doc = "run XQuery against an XMark document on a chosen storage backend" in
  Cmd.v (Cmd.info "xquery_run" ~version:"1.0" ~doc)
    Term.(
      const run_safe $ Cli.doc_file $ Cli.snapshot $ Cli.save_snapshot
      $ Cli.factor ~default:0.005 ()
      $ Cli.system ~default:Xmark_core.Runner.D ()
      $ query_arg $ query_file_arg $ number_arg $ timing_arg $ canonical_arg $ warn_arg
      $ summary_arg $ Cli.explain $ Cli.no_vec $ Cli.jobs)

let () = exit (Cmd.eval' cmd)
