(* xmark_fuzz — deterministic mutation fuzzing of the stack's trust
   boundaries: the Sax parser, the snapshot reader, the query service,
   the wire frame decoder, the write-ahead-log recovery scan, the
   vectorized-versus-scalar execution equivalence, and the shard
   manifest decoder.

   Every campaign is a pure function of --seed: the same seed, target
   and iteration count replays the same inputs byte-for-byte on any
   machine.  On a contract violation the harness shrinks the input to a
   minimal reproducer, prints its case seed (replayable on its own,
   without the campaign prefix), writes it under --corpus, and exits 1.
   Exit 0 means every iteration ended in a typed outcome; the harness
   itself never crashes on hostile input — an uncaught exception IS the
   bug being hunted, and is reported as a violation, not a crash.

   Exit codes: 0 all contracts held; 1 a violation was found (or corpus
   replay failed); 2 usage or environment errors. *)

open Cmdliner
module Check = Xmark_check
module Property = Check.Property
module Provenance = Xmark_core.Provenance

type target = Sax | Snapshot | Service | Wire | Wal | Vec | Shard

let target_names =
  [ ("sax", Sax); ("snapshot", Snapshot); ("service", Service); ("wire", Wire);
    ("wal", Wal); ("vec", Vec); ("shard", Shard) ]

let name_of_target t =
  fst (List.find (fun (_, t') -> t' = t) target_names)

let run_target ~corpus_dir ~seed ~iterations ~max_bytes = function
  | Sax -> Check.Fuzz_sax.run ?corpus_dir ~max_bytes ~seed ~iterations ()
  | Snapshot -> Check.Fuzz_snapshot.run ?corpus_dir ~seed ~iterations ()
  | Service -> Check.Fuzz_service.run ?corpus_dir ~seed ~iterations ()
  | Wire -> Check.Fuzz_wire.run ?corpus_dir ~max_bytes ~seed ~iterations ()
  | Wal -> Check.Fuzz_wal.run ?corpus_dir ~max_bytes ~seed ~iterations ()
  | Vec -> Check.Fuzz_vec.run ?corpus_dir ~seed ~iterations ()
  | Shard -> Check.Fuzz_shard.run ?corpus_dir ~max_bytes ~seed ~iterations ()

let replay_corpus dir =
  if not (Sys.file_exists dir) then begin
    Printf.printf "corpus %s: empty (nothing to replay)\n" dir;
    0
  end
  else begin
    let results = Check.Corpus.replay_dir dir in
    let bad =
      List.fold_left
        (fun bad (path, r) ->
          match r with
          | Ok label ->
              Printf.printf "  %-48s %s\n" (Filename.basename path) label;
              bad
          | Error msg ->
              Printf.printf "  %-48s FAIL: %s\n" (Filename.basename path) msg;
              bad + 1)
        0 results
    in
    Printf.printf "corpus %s: %d file(s), %d failure(s)\n" dir
      (List.length results) bad;
    if bad > 0 then 1 else 0
  end

let run targets seed iterations max_bytes corpus seed_corpus replay =
  try
    let corpus_dir = corpus in
    (match corpus_dir with
    | Some dir when seed_corpus ->
        let written = Check.Corpus.seed dir in
        Printf.printf "seeded %d corpus file(s) into %s\n" (List.length written)
          dir
    | None when seed_corpus ->
        prerr_endline "--seed-corpus requires --corpus DIR";
        exit 2
    | _ -> ());
    if replay then
      match corpus_dir with
      | Some dir -> replay_corpus dir
      | None ->
          prerr_endline "--replay requires --corpus DIR";
          2
    else begin
      let seed64 = Int64.of_int seed in
      Printf.printf "xmark_fuzz: commit %s, seed %d, %d iteration(s)/target\n%!"
        (Provenance.commit ()) seed iterations;
      let reports =
        List.map
          (fun t ->
            let r =
              run_target ~corpus_dir ~seed:seed64 ~iterations ~max_bytes t
            in
            Format.printf "%a%!" Property.pp_report r;
            (t, r))
          targets
      in
      let failed =
        List.filter (fun (_, r) -> r.Property.r_failure <> None) reports
      in
      if failed = [] then begin
        Printf.printf "all %d target(s) clean\n" (List.length targets);
        0
      end
      else begin
        List.iter
          (fun (t, r) ->
            match r.Property.r_failure with
            | None -> ()
            | Some f ->
                Printf.eprintf
                  "FAIL %s: replay with --target %s --seed %d (case seed %Ld)\n"
                  (name_of_target t) (name_of_target t) seed f.Property.f_case_seed)
          failed;
        1
      end
    end
  with
  | Sys_error m ->
      Printf.eprintf "%s\n" m;
      2

let targets_arg =
  let parse s =
    let parts = String.split_on_char ',' (String.lowercase_ascii s) in
    let resolve = function
      | "all" -> Ok (List.map snd target_names)
      | p -> (
          match List.assoc_opt p target_names with
          | Some t -> Ok [ t ]
          | None -> Error (`Msg (Printf.sprintf "unknown target %S" p)))
    in
    List.fold_left
      (fun acc p ->
        match (acc, resolve p) with
        | Ok ts, Ok ts' -> Ok (ts @ ts')
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) parts
  in
  let print fmt ts =
    Format.pp_print_string fmt
      (String.concat "," (List.map name_of_target ts))
  in
  Arg.(
    value
    & opt (conv (parse, print)) (List.map snd target_names)
    & info [ "t"; "target" ]
        ~docv:"TARGET"
        ~doc:
          "Comma-separated fuzz targets: $(b,sax), $(b,snapshot), \
           $(b,service), $(b,wire), $(b,wal), $(b,vec), $(b,shard) or \
           $(b,all) (default all).")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "seed" ] ~docv:"N"
        ~doc:
          "Campaign seed.  The same seed replays the same campaign \
           byte-for-byte.")

let iterations_arg =
  Arg.(
    value & opt int 1000
    & info [ "n"; "iterations" ] ~docv:"N"
        ~doc:"Fuzz cases per target (default 1000).")

let max_bytes_arg =
  Arg.(
    value & opt int 16384
    & info [ "max-bytes" ] ~docv:"N"
        ~doc:
          "Size cap for generated/mutated sax inputs (default 16384; large \
           enough that nesting attacks can exceed the parser's depth \
           limit).")

let corpus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "corpus" ] ~docv:"DIR"
        ~doc:
          "Corpus directory: shrunk reproducers of violations are written \
           here; $(b,--replay) re-checks every file in it.")

let seed_corpus_arg =
  Arg.(
    value & flag
    & info [ "seed-corpus" ]
        ~doc:
          "Write the hand-constructed seed cases (tag imbalance, \
           unterminated CDATA, truncated/transposed/re-sealed snapshot \
           pages, malformed queries) into $(b,--corpus) first.")

let replay_arg =
  Arg.(
    value & flag
    & info [ "replay" ]
        ~doc:
          "Instead of fuzzing, replay every corpus file against its \
           contract and exit 1 on any regression.")

let cmd =
  let doc = "deterministic mutation fuzzing of parser, snapshots and service" in
  Cmd.v
    (Cmd.info "xmark_fuzz" ~version:"1.0" ~doc)
    Term.(
      const run $ targets_arg $ seed_arg $ iterations_arg $ max_bytes_arg
      $ corpus_arg $ seed_corpus_arg $ replay_arg)

let () = exit (Cmd.eval' cmd)
